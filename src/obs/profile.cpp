#include "obs/profile.hpp"

#include <fstream>

namespace dv::obs {

std::uint64_t RunProfile::counter_value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double RunProfile::gauge_value(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

double RunProfile::top_level_phase_seconds() const {
  double s = 0.0;
  for (const auto& p : phases) {
    if (p.path.find('/') == std::string::npos) s += p.seconds;
  }
  return s;
}

json::Value RunProfile::to_json() const {
  json::Object o;
  o["schema"] = "dragonviz.profile/1";
  o["wall_seconds"] = wall_seconds;
  json::Object cs;
  for (const auto& c : counters) {
    cs[c.name] = static_cast<double>(c.value);
  }
  o["counters"] = std::move(cs);
  json::Object gs;
  for (const auto& g : gauges) gs[g.name] = g.value;
  o["gauges"] = std::move(gs);
  json::Array ps;
  for (const auto& p : phases) {
    json::Object po;
    po["path"] = p.path;
    po["seconds"] = p.seconds;
    po["count"] = p.count;
    ps.push_back(std::move(po));
  }
  o["phases"] = std::move(ps);
  return o;
}

RunProfile RunProfile::from_json(const json::Value& v) {
  DV_REQUIRE(v.get_string("schema", "") == "dragonviz.profile/1",
             "not a dragonviz profile (schema mismatch)");
  RunProfile p;
  p.wall_seconds = v.get_number("wall_seconds", 0.0);
  if (const json::Value* cs = v.find("counters")) {
    for (const auto& [name, val] : cs->as_object()) {
      p.counters.push_back(
          {name, static_cast<std::uint64_t>(val.as_number())});
    }
  }
  if (const json::Value* gs = v.find("gauges")) {
    for (const auto& [name, val] : gs->as_object()) {
      p.gauges.push_back({name, val.as_number()});
    }
  }
  if (const json::Value* ps = v.find("phases")) {
    for (const auto& pv : ps->as_array()) {
      p.phases.push_back({pv.at("path").as_string(),
                          pv.get_number("seconds", 0.0),
                          static_cast<std::uint64_t>(
                              pv.get_number("count", 0.0))});
    }
  }
  return p;
}

void RunProfile::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open: " + path);
  os << json::dump(to_json(), 2) << "\n";
  DV_REQUIRE(os.good(), "write failed: " + path);
}

RunProfile RunProfile::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DV_REQUIRE(is.good(), "cannot open: " + path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  return from_json(json::parse(text));
}

RunProfile capture() {
  RunProfile p;
  if constexpr (!kEnabled) return p;
  Snapshot s = snapshot();
  p.wall_seconds = s.wall_seconds;
  p.counters = std::move(s.counters);
  p.gauges = std::move(s.gauges);
  p.phases = std::move(s.phases);
  return p;
}

}  // namespace dv::obs
