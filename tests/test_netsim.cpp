// Network-simulator tests: flow conservation, credit accounting,
// saturation bookkeeping, determinism, backpressure, sampling.
#include <gtest/gtest.h>

#include "netsim/network.hpp"

namespace dv::netsim {
namespace {

topo::Dragonfly small() { return topo::Dragonfly::canonical(2); }  // 36 terms

Params fast_params() {
  Params p;
  p.packet_size = 512;
  p.event_budget = 50'000'000;
  return p;
}

class NetAllAlgos : public ::testing::TestWithParam<routing::Algo> {};

TEST_P(NetAllAlgos, FlowConservation) {
  const auto topo = small();
  Network net(topo, GetParam(), fast_params(), 1);
  Rng rng(1);
  std::uint64_t injected = 0;
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    const std::uint64_t bytes = 100 + rng.next_below(5000);
    injected += bytes;
    net.add_message({src, dst, bytes, rng.next_double() * 10000.0, 0});
  }
  const auto m = net.run();
  // Every injected byte is delivered (checked internally too) and the
  // terminal data_size column accounts for all of it.
  EXPECT_DOUBLE_EQ(m.total_injected(), static_cast<double>(injected));
  EXPECT_EQ(net.packets_injected(), net.packets_delivered());
  EXPECT_GT(m.end_time, 0.0);
}

TEST_P(NetAllAlgos, HopAndLatencyAccounting) {
  const auto topo = small();
  Network net(topo, GetParam(), fast_params(), 2);
  // One packet between far terminals.
  const std::uint32_t src = 0, dst = topo.num_terminals() - 1;
  net.add_message({src, dst, 512, 0.0, 0});
  const auto m = net.run();
  const auto& t = m.terminals[dst];
  EXPECT_EQ(t.packets_finished, 1u);
  EXPECT_GT(t.avg_latency(), 0.0);
  EXPECT_GE(t.avg_hops(), 2.0);   // at least exit + entry routers
  EXPECT_LE(t.avg_hops(), 8.0);
  EXPECT_DOUBLE_EQ(m.terminals[src].data_size, 512.0);
}

TEST_P(NetAllAlgos, DeterministicAcrossRuns) {
  auto build = [] {
    const auto topo = small();
    auto net = std::make_unique<Network>(topo, routing::Algo::kAdaptive,
                                         fast_params(), 99);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      const auto src =
          static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
      auto dst = src;
      while (dst == src) {
        dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
      }
      net->add_message({src, dst, 2048, rng.next_double() * 1000.0, 0});
    }
    return net;
  };
  const auto m1 = build()->run();
  const auto m2 = build()->run();
  EXPECT_DOUBLE_EQ(m1.end_time, m2.end_time);
  ASSERT_EQ(m1.local_links.size(), m2.local_links.size());
  for (std::size_t i = 0; i < m1.local_links.size(); ++i) {
    EXPECT_DOUBLE_EQ(m1.local_links[i].traffic, m2.local_links[i].traffic);
    EXPECT_DOUBLE_EQ(m1.local_links[i].sat_time, m2.local_links[i].sat_time);
  }
  for (std::size_t i = 0; i < m1.terminals.size(); ++i) {
    EXPECT_DOUBLE_EQ(m1.terminals[i].sum_latency, m2.terminals[i].sum_latency);
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, NetAllAlgos,
                         ::testing::Values(routing::Algo::kMinimal,
                                           routing::Algo::kNonMinimal,
                                           routing::Algo::kAdaptive,
                                           routing::Algo::kProgressiveAdaptive));

TEST(Netsim, SingleHopLatencyMatchesAnalyticModel) {
  const auto topo = small();
  Params p = fast_params();
  Network net(topo, routing::Algo::kMinimal, p, 1);
  // Terminals 0 and 1 share router 0: path is inject -> router -> eject.
  net.add_message({0, 1, 512, 0.0, 0});
  const auto m = net.run();
  const double ser_t = 512.0 / p.terminal_bandwidth;
  const double expected = ser_t + p.terminal_latency + p.router_delay +
                          ser_t + p.terminal_latency;
  EXPECT_NEAR(m.terminals[1].avg_latency(), expected, 1e-6);
  EXPECT_DOUBLE_EQ(m.terminals[1].avg_hops(), 1.0);
}

TEST(Netsim, LinkTrafficMatchesPath) {
  const auto topo = small();
  Network net(topo, routing::Algo::kMinimal, fast_params(), 1);
  // Two terminals on different routers in the same group: one local link.
  const std::uint32_t src = 0;
  const std::uint32_t dst = topo.terminals_per_router();  // router 1, slot 0
  net.add_message({src, dst, 2000, 0.0, 0});
  const auto m = net.run();
  double local_bytes = 0;
  for (const auto& l : m.local_links) local_bytes += l.traffic;
  double global_bytes = 0;
  for (const auto& l : m.global_links) global_bytes += l.traffic;
  EXPECT_DOUBLE_EQ(local_bytes, 2000.0);
  EXPECT_DOUBLE_EQ(global_bytes, 0.0);
}

TEST(Netsim, CrossGroupUsesExactlyOneGlobalLink) {
  const auto topo = small();
  Network net(topo, routing::Algo::kMinimal, fast_params(), 1);
  const std::uint32_t per_group =
      topo.routers_per_group() * topo.terminals_per_router();
  net.add_message({0, per_group, 4096, 0.0, 0});  // group 0 -> group 1
  const auto m = net.run();
  double global_bytes = 0;
  int used_links = 0;
  for (const auto& l : m.global_links) {
    if (l.traffic > 0) {
      ++used_links;
      global_bytes += l.traffic;
    }
  }
  EXPECT_EQ(used_links, 1);
  EXPECT_DOUBLE_EQ(global_bytes, 4096.0);
}

TEST(Netsim, HotspotCausesEjectionSaturation) {
  const auto topo = small();
  Params p = fast_params();
  p.vc_buffer_packets = 2;
  Network net(topo, routing::Algo::kMinimal, p, 1);
  // Many senders to one victim terminal -> its ejection link saturates.
  const std::uint32_t victim = 1;
  for (std::uint32_t s = 2; s < 20; ++s) {
    net.add_message({s, victim, 64 * 1024, 0.0, 0});
  }
  const auto m = net.run();
  EXPECT_GT(m.terminals[victim].sat_time, 0.0)
      << "receiver terminal link should saturate";
}

TEST(Netsim, BackpressurePropagatesToLocalLinks) {
  const auto topo = small();
  Params p = fast_params();
  p.vc_buffer_packets = 2;
  Network net(topo, routing::Algo::kMinimal, p, 1);
  // Saturate one global link: all of group 0 sends to group 1 through the
  // single group 0 -> group 1 cable; feeder local links must saturate too.
  const std::uint32_t per_group =
      topo.routers_per_group() * topo.terminals_per_router();
  for (std::uint32_t s = 0; s < per_group; ++s) {
    net.add_message({s, per_group + s % per_group, 32 * 1024, 0.0, 0});
  }
  const auto m = net.run();
  double gsat = 0;
  for (const auto& l : m.global_links) gsat += l.sat_time;
  double lsat = 0;
  for (const auto& l : m.local_links) lsat += l.sat_time;
  EXPECT_GT(gsat, 0.0);
  EXPECT_GT(lsat, 0.0) << "back pressure should reach the local links";
}

TEST(Netsim, SamplingDeltasSumToTotals) {
  const auto topo = small();
  Network net(topo, routing::Algo::kAdaptive, fast_params(), 4);
  Rng rng(9);
  for (int i = 0; i < 150; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    net.add_message({src, dst, 4096, rng.next_double() * 20000.0, 0});
  }
  net.enable_sampling(500.0);
  const auto m = net.run();
  ASSERT_TRUE(m.has_time_series());
  ASSERT_GT(m.local_traffic_ts.frames(), 2u);
  // Per-link: sum of sampled deltas equals the final cumulative value.
  for (std::size_t i = 0; i < m.local_links.size(); ++i) {
    const double summed = m.local_traffic_ts.range_sum(
        i, 0, m.local_traffic_ts.frames());
    EXPECT_NEAR(summed, m.local_links[i].traffic,
                1e-3 * std::max(1.0, m.local_links[i].traffic));
    const double sat_summed =
        m.local_sat_ts.range_sum(i, 0, m.local_sat_ts.frames());
    EXPECT_NEAR(sat_summed, m.local_links[i].sat_time,
                1e-3 * std::max(1.0, m.local_links[i].sat_time) + 0.5);
  }
  for (std::size_t i = 0; i < m.terminals.size(); ++i) {
    const double summed =
        m.term_traffic_ts.range_sum(i, 0, m.term_traffic_ts.frames());
    EXPECT_NEAR(summed, m.terminals[i].data_size,
                1e-3 * std::max(1.0, m.terminals[i].data_size));
  }
}

TEST(Netsim, JobLabelsPropagate) {
  const auto topo = small();
  const auto placement = placement::place_jobs(
      topo, {{"jobA", 6, placement::Policy::kContiguous},
             {"jobB", 6, placement::Policy::kRandomRouter}},
      3);
  Network net(topo, routing::Algo::kMinimal, fast_params(), 1);
  net.set_jobs(placement);
  net.set_labels("test", "hybrid", {"jobA", "jobB"});
  net.add_message({placement.terminal_of(0, 0), placement.terminal_of(0, 1),
                   512, 0.0, 0});
  const auto m = net.run();
  EXPECT_EQ(m.workload, "test");
  EXPECT_EQ(m.placement, "hybrid");
  EXPECT_EQ(m.job_names.size(), 2u);
  EXPECT_EQ(m.terminals[placement.terminal_of(0, 0)].job, 0);
  EXPECT_EQ(m.terminals[placement.terminal_of(1, 0)].job, 1);
  int idle = 0;
  for (const auto& t : m.terminals) idle += (t.job == -1);
  EXPECT_EQ(idle, static_cast<int>(topo.num_terminals()) - 12);
}

TEST(Netsim, RejectsBadMessages) {
  const auto topo = small();
  Network net(topo, routing::Algo::kMinimal, fast_params(), 1);
  EXPECT_THROW(net.add_message({0, 0, 100, 0.0, 0}), Error);      // self
  EXPECT_THROW(net.add_message({0, 99999, 100, 0.0, 0}), Error);  // range
  EXPECT_THROW(net.add_message({0, 1, 0, 0.0, 0}), Error);        // empty
  EXPECT_THROW(net.add_message({0, 1, 10, -1.0, 0}), Error);      // time
}

TEST(Netsim, RunTwiceThrows) {
  Network net(small(), routing::Algo::kMinimal, fast_params(), 1);
  net.add_message({0, 1, 100, 0.0, 0});
  (void)net.run();
  EXPECT_THROW(net.run(), Error);
}

TEST(Netsim, ParamsValidate) {
  Params p;
  p.packet_size = 0;
  EXPECT_THROW(Network(small(), routing::Algo::kMinimal, p, 1), Error);
  Params q;
  q.local_bandwidth = -1;
  EXPECT_THROW(Network(small(), routing::Algo::kMinimal, q, 1), Error);
  // Zero latencies are rejected: they break saturation accounting and
  // would collapse the parallel engine's lookahead window to nothing.
  Params r;
  r.credit_latency = 0.0;
  EXPECT_THROW(Network(small(), routing::Algo::kMinimal, r, 1), Error);
  Params s;
  s.local_latency = 0.0;
  EXPECT_THROW(Network(small(), routing::Algo::kMinimal, s, 1), Error);
  Params t;
  t.global_latency = -5.0;
  EXPECT_THROW(Network(small(), routing::Algo::kMinimal, t, 1), Error);
  Params u;
  u.router_delay = -1.0;
  EXPECT_THROW(Network(small(), routing::Algo::kMinimal, u, 1), Error);
}

TEST(Netsim, ValiantDoublesGlobalTraffic) {
  // Paper (Sec. V-B): routing non-minimally through proxy groups "doubles
  // bandwidth of the global links". Cross-group uniform traffic takes one
  // global hop minimally and two via a Valiant proxy.
  const auto topo = topo::Dragonfly::canonical(3);
  auto run_with = [&](routing::Algo algo) {
    Network net(topo, algo, fast_params(), 3);
    Rng rng(4);
    for (int i = 0; i < 400; ++i) {
      const auto src =
          static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
      auto dst = src;
      while (dst == src ||
             topo.terminal_group(dst) == topo.terminal_group(src)) {
        dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
      }
      net.add_message({src, dst, 2048, rng.next_double() * 50000.0, 0});
    }
    return net.run();
  };
  const auto mmin = run_with(routing::Algo::kMinimal);
  const auto mval = run_with(routing::Algo::kNonMinimal);
  const double gmin = mmin.total_global_traffic();
  const double gval = mval.total_global_traffic();
  EXPECT_NEAR(gval / gmin, 2.0, 0.15);
}

TEST(Netsim, ContentionAtTheLinkItselfCountsAsSaturation) {
  // Several flows share one local link while every downstream ejection
  // port is distinct (no downstream blocking): the saturation must come
  // from the output backlog at the link itself.
  const auto topo = small();
  Params p = fast_params();
  p.vc_buffer_packets = 2;
  Network net(topo, routing::Algo::kMinimal, p, 1);
  // All terminals of router 0 flood distinct terminals of router 1.
  const std::uint32_t per = topo.terminals_per_router();
  for (std::uint32_t s = 0; s < per; ++s) {
    net.add_message({s, per + s, 256 * 1024, 0.0, 0});
  }
  const auto m = net.run();
  const std::uint32_t lport = topo.local_port(0, 1) - per;
  const std::uint32_t lid = topo.local_link_id(0, lport);
  EXPECT_GT(m.local_links[lid].traffic, 0.0);
  EXPECT_GT(m.local_links[lid].sat_time, 0.0)
      << "shared-link contention must register as saturation";
  // And the saturation is specific to that link.
  for (std::uint32_t l = 0; l < m.local_links.size(); ++l) {
    if (l != lid) {
      EXPECT_DOUBLE_EQ(m.local_links[l].sat_time, 0.0);
    }
  }
}

TEST(Netsim, AdaptiveSpreadsTrafficVsMinimal) {
  // The paper's central qualitative claim (Figs. 8/9): adaptive routing
  // raises link usage spread and lowers saturation under adversarial
  // traffic. Group 0 floods group 1 (worst case for minimal).
  const auto topo = topo::Dragonfly::canonical(3);
  const std::uint32_t per_group =
      topo.routers_per_group() * topo.terminals_per_router();
  auto flood = [&](routing::Algo algo) {
    Params p = fast_params();
    p.vc_buffer_packets = 4;
    Network net(topo, algo, p, 7);
    for (std::uint32_t s = 0; s < per_group; ++s) {
      for (int k = 0; k < 4; ++k) {
        net.add_message(
            {s, per_group + (s + 7 * k) % per_group, 8192, k * 100.0, 0});
      }
    }
    return net.run();
  };
  const auto mmin = flood(routing::Algo::kMinimal);
  const auto madp = flood(routing::Algo::kAdaptive);

  int used_min = 0, used_adp = 0;
  double peak_sat_min = 0, peak_sat_adp = 0;
  for (const auto& l : mmin.global_links) {
    used_min += l.traffic > 0;
    peak_sat_min = std::max(peak_sat_min, l.sat_time);
  }
  for (const auto& l : madp.global_links) {
    used_adp += l.traffic > 0;
    peak_sat_adp = std::max(peak_sat_adp, l.sat_time);
  }
  EXPECT_GT(used_adp, used_min) << "adaptive should use more global links";
  EXPECT_LT(peak_sat_adp, peak_sat_min)
      << "adaptive should relieve the congestion hotspot";
  EXPECT_LT(madp.end_time, mmin.end_time)
      << "adaptive should finish the adversarial workload sooner";
}

}  // namespace
}  // namespace dv::netsim
