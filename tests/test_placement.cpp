// Placement-policy invariants: disjointness, coverage, policy structure.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "placement/placement.hpp"

namespace dv::placement {
namespace {

topo::Dragonfly net() { return topo::Dragonfly::canonical(3); }  // 162 terms

std::vector<JobRequest> three_jobs(Policy p0, Policy p1, Policy p2) {
  return {{"amg", 40, p0}, {"amr", 40, p1}, {"minife", 30, p2}};
}

class AllPolicies : public ::testing::TestWithParam<Policy> {};

TEST_P(AllPolicies, JobsAreDisjointAndComplete) {
  const auto topo = net();
  const auto placement =
      place_jobs(topo, three_jobs(GetParam(), GetParam(), GetParam()), 7);
  std::set<std::uint32_t> seen;
  for (std::size_t j = 0; j < placement.job_count(); ++j) {
    for (std::uint32_t t : placement.terminals[j]) {
      EXPECT_LT(t, topo.num_terminals());
      EXPECT_TRUE(seen.insert(t).second) << "terminal " << t << " reused";
    }
  }
  EXPECT_EQ(seen.size(), 110u);
}

TEST_P(AllPolicies, ReverseMapsAreConsistent) {
  const auto topo = net();
  const auto placement =
      place_jobs(topo, three_jobs(GetParam(), GetParam(), GetParam()), 3);
  for (std::size_t j = 0; j < placement.job_count(); ++j) {
    for (std::uint32_t r = 0; r < placement.terminals[j].size(); ++r) {
      const std::uint32_t t = placement.terminal_of(j, r);
      EXPECT_EQ(placement.job_of[t], static_cast<std::int32_t>(j));
      EXPECT_EQ(placement.rank_of[t], static_cast<std::int32_t>(r));
    }
  }
  // Idle terminals are marked idle.
  std::size_t idle = 0;
  for (std::uint32_t t = 0; t < topo.num_terminals(); ++t) {
    if (placement.job_of[t] == Placement::kIdle) {
      EXPECT_EQ(placement.rank_of[t], -1);
      ++idle;
    }
  }
  EXPECT_EQ(idle, topo.num_terminals() - 110u);
}

TEST_P(AllPolicies, DeterministicForSeed) {
  const auto topo = net();
  const auto a = place_jobs(topo, three_jobs(GetParam(), GetParam(), GetParam()), 11);
  const auto b = place_jobs(topo, three_jobs(GetParam(), GetParam(), GetParam()), 11);
  EXPECT_EQ(a.terminals, b.terminals);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPolicies,
                         ::testing::Values(Policy::kContiguous,
                                           Policy::kRandomGroup,
                                           Policy::kRandomRouter,
                                           Policy::kRandomNode));

TEST(Placement, ContiguousIsPrefix) {
  const auto topo = net();
  const auto placement =
      place_jobs(topo, {{"a", 25, Policy::kContiguous}}, 1);
  for (std::uint32_t r = 0; r < 25; ++r) {
    EXPECT_EQ(placement.terminal_of(0, r), r);
  }
}

TEST(Placement, RandomRouterFillsWholeRouters) {
  const auto topo = net();  // p = 3 terminals per router
  const auto placement =
      place_jobs(topo, {{"a", 30, Policy::kRandomRouter}}, 5);
  // Count terminals per router: every touched router is fully used
  // (30 ranks / 3 per router = 10 routers exactly).
  std::map<std::uint32_t, int> per_router;
  for (std::uint32_t t : placement.terminals[0]) {
    ++per_router[topo.terminal_router(t)];
  }
  EXPECT_EQ(per_router.size(), 10u);
  for (const auto& [router, cnt] : per_router) EXPECT_EQ(cnt, 3);
}

TEST(Placement, RandomGroupFillsGroupContiguously) {
  const auto topo = net();  // 18 terminals per group
  const auto placement =
      place_jobs(topo, {{"a", 18, Policy::kRandomGroup}}, 5);
  std::set<std::uint32_t> groups;
  for (std::uint32_t t : placement.terminals[0]) {
    groups.insert(topo.terminal_group(t));
  }
  EXPECT_EQ(groups.size(), 1u);  // exactly one group suffices
}

TEST(Placement, RandomGroupSpreadsAcrossSeeds) {
  const auto topo = net();
  std::set<std::uint32_t> first_groups;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto placement =
        place_jobs(topo, {{"a", 18, Policy::kRandomGroup}}, seed);
    first_groups.insert(topo.terminal_group(placement.terminal_of(0, 0)));
  }
  EXPECT_GT(first_groups.size(), 3u);  // actually random
}

TEST(Placement, HybridPoliciesPerJob) {
  const auto topo = net();
  const auto placement = place_jobs(
      topo, three_jobs(Policy::kRandomRouter, Policy::kRandomGroup,
                       Policy::kRandomRouter),
      9);
  EXPECT_EQ(placement.job_count(), 3u);
  // Job 1 (random group) occupies few groups; 40 ranks / 18 per group -> 3.
  std::set<std::uint32_t> groups;
  for (std::uint32_t t : placement.terminals[1]) {
    groups.insert(topo.terminal_group(t));
  }
  EXPECT_LE(groups.size(), 4u);
}

TEST(Placement, OverflowThrows) {
  const auto topo = net();
  EXPECT_THROW(
      place_jobs(topo, {{"big", topo.num_terminals() + 1, Policy::kContiguous}}, 1),
      Error);
  EXPECT_THROW(place_jobs(topo,
                          {{"a", topo.num_terminals(), Policy::kContiguous},
                           {"b", 1, Policy::kRandomNode}},
                          1),
               Error);
}

TEST(Placement, ZeroRankJobThrows) {
  EXPECT_THROW(place_jobs(net(), {{"a", 0, Policy::kContiguous}}, 1), Error);
}

TEST(Placement, PolicyStringRoundTrip) {
  for (Policy p : {Policy::kContiguous, Policy::kRandomGroup,
                   Policy::kRandomRouter, Policy::kRandomNode}) {
    EXPECT_EQ(policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW(policy_from_string("bogus"), Error);
}

}  // namespace
}  // namespace dv::placement
