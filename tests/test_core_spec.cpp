// Projection-spec tests: verbatim Fig. 5 scripts, builder API, plot-type
// rule, round trips.
#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/spec.hpp"

namespace dv::core {
namespace {

// Verbatim scripts from the paper (Fig. 5a and 5b).
const char* kFig5aScript = R"(
{ aggregate : "group_id",
  maxBins : 8,
  project : "global_link",
  vmap : { color : "sat_time", size : "traffic" },
  colors : ["white", "purple"]},
{ project : "router",
  aggregate : "router_rank",
  vmap : { color : "local_sat_time", },
  colors : ["white", "steelblue"],},
{ project : "terminal",
  aggregate : ["router_port", "workload"],
  vmap: { color :"workload", size : "avg_hops", },
  colors: ["green", "orange", "brown"],}
)";

const char* kFig5bScript = R"(
{ filter: { group_id : [0, 8] },
  aggregate : "group_id",
  project : "router",
  vmap : { size : "global_traffic"},
  colors : ["white", "purple"]},
{ project : "local_link",
  aggregate : ["router_rank", "router_port"],
  vmap : { color : "traffic", x : "router_rank", y : "router_port" },
  colors : ["white", "steelblue"],},
{ project : "terminal",
  aggregate : ["router_rank", "router_port"],
  vmap: { color :"workload", size : "data_size",
          x : "router_rank", y : "router_port" },
  colors: ["green", "orange", "brown"],
  border: false}
)";

TEST(Spec, ParsesFig5a) {
  const auto spec = ProjectionSpec::parse(kFig5aScript);
  ASSERT_EQ(spec.levels.size(), 3u);
  EXPECT_EQ(spec.levels[0].entity, Entity::kGlobalLink);
  EXPECT_EQ(spec.levels[0].max_bins, 8u);
  EXPECT_EQ(spec.levels[0].vmap.color, "sat_time");
  EXPECT_EQ(spec.levels[0].vmap.size, "traffic");
  EXPECT_EQ(spec.levels[0].colors,
            (std::vector<std::string>{"white", "purple"}));
  EXPECT_EQ(spec.levels[1].aggregate, (std::vector<std::string>{"router_rank"}));
  EXPECT_EQ(spec.levels[2].aggregate,
            (std::vector<std::string>{"router_port", "workload"}));
}

TEST(Spec, ParsesFig5bWithFilterAndBorder) {
  const auto spec = ProjectionSpec::parse(kFig5bScript);
  ASSERT_EQ(spec.levels.size(), 3u);
  ASSERT_EQ(spec.levels[0].filters.size(), 1u);
  EXPECT_EQ(spec.levels[0].filters[0].attr, "group_id");
  EXPECT_DOUBLE_EQ(spec.levels[0].filters[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(spec.levels[0].filters[0].hi, 8.0);
  EXPECT_TRUE(spec.levels[0].border);
  EXPECT_FALSE(spec.levels[2].border);
  EXPECT_EQ(spec.levels[1].vmap.x, "router_rank");
  EXPECT_EQ(spec.levels[1].vmap.y, "router_port");
}

TEST(Spec, PlotTypeFollowsChannelCount) {
  // Paper: plot type is chosen from the number of visual encodings.
  LevelSpec lvl;
  lvl.vmap.color = "sat_time";
  EXPECT_EQ(lvl.plot_type(), PlotType::kHeatmap1D);
  lvl.vmap.size = "traffic";
  EXPECT_EQ(lvl.plot_type(), PlotType::kBarChart);
  lvl.vmap.x = "router_rank";
  EXPECT_EQ(lvl.plot_type(), PlotType::kHeatmap2D);
  lvl.vmap.y = "router_port";
  EXPECT_EQ(lvl.plot_type(), PlotType::kScatter);
}

TEST(Spec, Fig5PlotTypesComeOutRight) {
  const auto a = ProjectionSpec::parse(kFig5aScript);
  EXPECT_EQ(a.levels[0].plot_type(), PlotType::kBarChart);   // color+size
  EXPECT_EQ(a.levels[1].plot_type(), PlotType::kHeatmap1D);  // color
  EXPECT_EQ(a.levels[2].plot_type(), PlotType::kBarChart);   // color+size
  const auto b = ProjectionSpec::parse(kFig5bScript);
  EXPECT_EQ(b.levels[1].plot_type(), PlotType::kHeatmap2D);  // color+x+y
  EXPECT_EQ(b.levels[2].plot_type(), PlotType::kScatter);    // 4 channels
}

TEST(Spec, ScriptRoundTrip) {
  const auto spec = ProjectionSpec::parse(kFig5bScript);
  const auto again = ProjectionSpec::parse(spec.to_script());
  ASSERT_EQ(again.levels.size(), spec.levels.size());
  for (std::size_t i = 0; i < spec.levels.size(); ++i) {
    EXPECT_EQ(again.levels[i].entity, spec.levels[i].entity);
    EXPECT_EQ(again.levels[i].aggregate, spec.levels[i].aggregate);
    EXPECT_EQ(again.levels[i].max_bins, spec.levels[i].max_bins);
    EXPECT_EQ(again.levels[i].vmap.color, spec.levels[i].vmap.color);
    EXPECT_EQ(again.levels[i].vmap.x, spec.levels[i].vmap.x);
    EXPECT_EQ(again.levels[i].border, spec.levels[i].border);
    EXPECT_EQ(again.levels[i].colors, spec.levels[i].colors);
  }
}

TEST(Spec, RibbonEntryParses) {
  const auto spec = ProjectionSpec::parse(R"(
    { project: "router", aggregate: "router_rank",
      vmap: { color: "local_sat_time" } },
    { ribbons: { project: "global_link", key: "job",
                 vmap: { size: "traffic", color: "sat_time" },
                 colors: ["white", "purple"] } }
  )");
  EXPECT_TRUE(spec.ribbons.enabled);
  EXPECT_EQ(spec.ribbons.entity, Entity::kGlobalLink);
  EXPECT_EQ(spec.ribbons.key, "job");
  EXPECT_EQ(spec.ribbons.colors,
            (std::vector<std::string>{"white", "purple"}));
}

TEST(Spec, BuilderMirrorsScripts) {
  const auto spec = SpecBuilder()
                        .level(Entity::kGlobalLink)
                        .aggregate({"group_id"})
                        .max_bins(8)
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(Entity::kTerminal)
                        .aggregate({"router_port", "workload"})
                        .color("workload")
                        .no_border()
                        .ribbons(Entity::kLocalLink, "router_rank")
                        .build();
  ASSERT_EQ(spec.levels.size(), 2u);
  EXPECT_EQ(spec.levels[0].max_bins, 8u);
  EXPECT_FALSE(spec.levels[1].border);
  EXPECT_EQ(spec.ribbons.key, "router_rank");
  // Builder output survives a script round trip.
  const auto again = ProjectionSpec::parse(spec.to_script());
  EXPECT_EQ(again.levels.size(), 2u);
  EXPECT_EQ(again.ribbons.key, "router_rank");
}

TEST(Spec, PresetsBuildAndRoundTrip) {
  for (const auto& name : preset_names()) {
    const auto spec = preset(name);
    EXPECT_FALSE(spec.levels.empty()) << name;
    // Every preset survives a script round trip.
    const auto again = ProjectionSpec::parse(spec.to_script());
    EXPECT_EQ(again.levels.size(), spec.levels.size()) << name;
    EXPECT_EQ(again.ribbons.key, spec.ribbons.key) << name;
  }
  EXPECT_EQ(preset("fig5a").levels[0].max_bins, 8u);
  EXPECT_EQ(preset("fig13").ribbons.key, "job");
  EXPECT_THROW(preset("nope"), Error);
  EXPECT_TRUE(is_preset_ref("preset:fig4"));
  EXPECT_FALSE(is_preset_ref("spec.json"));
  EXPECT_EQ(preset_from_ref("preset:fig4").levels.size(),
            preset("fig4").levels.size());
}

TEST(Spec, Errors) {
  EXPECT_THROW(ProjectionSpec::parse(""), Error);
  EXPECT_THROW(ProjectionSpec::parse("{ aggregate: \"x\" }"), Error);  // no project
  EXPECT_THROW(ProjectionSpec::parse("{ project: \"bogus\" }"), Error);
  EXPECT_THROW(ProjectionSpec::parse(
                   R"({ project: "router", filter: { a: [1] } })"),
               Error);  // bad range
  EXPECT_THROW(SpecBuilder().build(), Error);              // no levels
  EXPECT_THROW(SpecBuilder().aggregate({"x"}), Error);     // config before level
  SpecBuilder b;
  EXPECT_THROW(b.ribbons(Entity::kRouter, "router_rank"), Error);
}

}  // namespace
}  // namespace dv::core
