// Routing-policy tests: reachability, hop bounds, VC monotonicity
// (deadlock-freedom argument), and the adaptive/PAR decision logic driven
// by synthetic congestion.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "routing/routing.hpp"

namespace dv::routing {
namespace {

/// Probe with programmable per-(router, port) depths.
class FakeProbe : public QueueProbe {
 public:
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> depths;
  double depth(std::uint32_t router, std::uint32_t port) const override {
    const auto it = depths.find({router, port});
    return it == depths.end() ? 0.0 : it->second;
  }
};

/// Walks a packet from src to dst; returns the sequence of routers visited.
/// Fails the test if the walk exceeds the planner's hop bound.
std::vector<std::uint32_t> walk(const topo::Dragonfly& net,
                                RoutePlanner& planner,
                                const QueueProbe& probe, std::uint32_t src,
                                std::uint32_t dst) {
  PacketRoute state;
  state.dst_terminal = dst;
  planner.on_inject(state, src, probe);
  std::uint32_t router = net.terminal_router(src);
  std::vector<std::uint32_t> visited{router};
  std::uint32_t link_hops = 0;
  for (;;) {
    const Decision d = planner.route(state, router, probe);
    if (d.kind == Decision::Kind::kTerminal) {
      EXPECT_EQ(router, net.terminal_router(dst));
      return visited;
    }
    ++link_hops;
    EXPECT_LE(link_hops, planner.max_link_hops()) << "hop bound exceeded";
    if (link_hops > planner.max_link_hops()) return visited;
    if (d.kind == Decision::Kind::kLocal) {
      const std::uint32_t lport = d.port - net.terminals_per_router();
      router = net.router_id(
          net.router_group(router),
          net.local_neighbor(net.router_rank(router), lport));
    } else {
      const std::uint32_t ch =
          d.port - net.terminals_per_router() - (net.routers_per_group() - 1);
      router = net.global_neighbor(router, ch).router;
    }
    visited.push_back(router);
  }
}

class RouteAllAlgos : public ::testing::TestWithParam<Algo> {};

TEST_P(RouteAllAlgos, EveryPairIsReachableWithinHopBound) {
  const auto net = topo::Dragonfly::canonical(2);  // 36 terminals
  RoutePlanner planner(net, GetParam(), {}, 42);
  NullProbe probe;
  for (std::uint32_t s = 0; s < net.num_terminals(); ++s) {
    for (std::uint32_t d = 0; d < net.num_terminals(); ++d) {
      if (s == d) continue;
      walk(net, planner, probe, s, d);
    }
  }
}

TEST_P(RouteAllAlgos, NoRouterRevisitedOnAPath) {
  // VC = link-hop index is deadlock-free as long as paths are loop-free.
  const auto net = topo::Dragonfly::canonical(3);
  RoutePlanner planner(net, GetParam(), {}, 7);
  NullProbe probe;
  for (std::uint32_t s = 0; s < net.num_terminals(); s += 5) {
    for (std::uint32_t d = 0; d < net.num_terminals(); d += 7) {
      if (s == d) continue;
      const auto visited = walk(net, planner, probe, s, d);
      std::set<std::uint32_t> uniq(visited.begin(), visited.end());
      EXPECT_EQ(uniq.size(), visited.size())
          << "router revisited between " << s << " and " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, RouteAllAlgos,
                         ::testing::Values(Algo::kMinimal, Algo::kNonMinimal,
                                           Algo::kAdaptive,
                                           Algo::kProgressiveAdaptive));

TEST(Routing, MinimalTakesMinimalHops) {
  const auto net = topo::Dragonfly::canonical(3);
  RoutePlanner planner(net, Algo::kMinimal, {}, 1);
  NullProbe probe;
  for (std::uint32_t s = 0; s < net.num_terminals(); s += 11) {
    for (std::uint32_t d = 0; d < net.num_terminals(); d += 13) {
      if (s == d) continue;
      const auto visited = walk(net, planner, probe, s, d);
      EXPECT_EQ(visited.size(), net.minimal_router_hops(s, d));
    }
  }
}

TEST(Routing, ValiantVisitsProxyGroup) {
  const auto net = topo::Dragonfly::canonical(3);
  RoutePlanner planner(net, Algo::kNonMinimal, {}, 3);
  NullProbe probe;
  // Cross-group packets should frequently pass through a third group.
  int detoured = 0, total = 0;
  for (std::uint32_t s = 0; s < net.terminals_per_router(); ++s) {
    for (std::uint32_t d = 0; d < net.num_terminals(); d += 17) {
      const std::uint32_t sg = net.terminal_group(s);
      const std::uint32_t dg = net.terminal_group(d);
      if (sg == dg) continue;
      const auto visited = walk(net, planner, probe, s, d);
      std::set<std::uint32_t> groups;
      for (std::uint32_t r : visited) groups.insert(net.router_group(r));
      ++total;
      if (groups.size() > 2) ++detoured;
    }
  }
  EXPECT_GT(detoured, total / 2);
}

TEST(Routing, AdaptiveMinimalWhenUncongested) {
  const auto net = topo::Dragonfly::canonical(3);
  RoutePlanner planner(net, Algo::kAdaptive, {}, 5);
  NullProbe probe;
  for (std::uint32_t s = 0; s < net.num_terminals(); s += 19) {
    for (std::uint32_t d = 0; d < net.num_terminals(); d += 23) {
      if (s == d) continue;
      const auto visited = walk(net, planner, probe, s, d);
      EXPECT_EQ(visited.size(), net.minimal_router_hops(s, d))
          << "adaptive should be minimal on an idle network";
    }
  }
}

TEST(Routing, AdaptiveDivertsUnderCongestion) {
  const auto net = topo::Dragonfly::canonical(3);
  RoutePlanner planner(net, Algo::kAdaptive, {}, 5);
  // Pick an inter-group pair and congest the minimal first-hop port hard.
  const std::uint32_t src = 0;
  const std::uint32_t dst = net.num_terminals() - 1;
  const std::uint32_t sr = net.terminal_router(src);
  FakeProbe probe;
  // Saturate every port that could serve the minimal route.
  const auto exit = net.group_exit(net.terminal_group(src),
                                   net.terminal_group(dst));
  const std::uint32_t min_port =
      exit.router == sr
          ? net.global_port(exit.channel)
          : net.local_port(net.router_rank(sr), net.router_rank(exit.router));
  probe.depths[{sr, min_port}] = 1000.0;

  int diverted = 0;
  for (int i = 0; i < 50; ++i) {
    PacketRoute state;
    state.dst_terminal = dst;
    planner.on_inject(state, src, probe);
    if (state.proxy_group >= 0) ++diverted;
  }
  EXPECT_GT(diverted, 40);  // nearly always takes the Valiant path
}

TEST(Routing, ProgressiveAdaptiveDivertsMidGroup) {
  const auto net = topo::Dragonfly::canonical(3);
  AdaptiveParams params;
  params.par_divert_depth = 2.0;
  RoutePlanner planner(net, Algo::kProgressiveAdaptive, params, 5);
  const std::uint32_t src = 0;
  const std::uint32_t dst = net.num_terminals() - 1;
  const std::uint32_t sr = net.terminal_router(src);

  // Uncongested at injection, congested when re-evaluated at the source
  // router: PAR reacts, source-routed adaptive would not.
  FakeProbe probe;
  PacketRoute state;
  state.dst_terminal = dst;
  planner.on_inject(state, src, probe);
  EXPECT_FALSE(state.decided);
  EXPECT_LT(state.proxy_group, 0);

  const auto exit =
      net.group_exit(net.terminal_group(src), net.terminal_group(dst));
  const std::uint32_t min_port =
      exit.router == sr
          ? net.global_port(exit.channel)
          : net.local_port(net.router_rank(sr), net.router_rank(exit.router));
  probe.depths[{sr, min_port}] = 50.0;
  (void)planner.route(state, sr, probe);
  EXPECT_GE(state.proxy_group, 0) << "PAR should divert at the source router";
}

TEST(Routing, AlgoStringRoundTrip) {
  for (Algo a : {Algo::kMinimal, Algo::kNonMinimal, Algo::kAdaptive,
                 Algo::kProgressiveAdaptive}) {
    EXPECT_EQ(algo_from_string(to_string(a)), a);
  }
  EXPECT_EQ(algo_from_string("UGAL"), Algo::kAdaptive);
  EXPECT_EQ(algo_from_string("par"), Algo::kProgressiveAdaptive);
  EXPECT_THROW(algo_from_string("bogus"), Error);
}

}  // namespace
}  // namespace dv::routing
