// Sweep orchestrator tests: a small grid lands one packed run per point in
// the store, uids are distinct per point and reproducible across re-runs,
// re-sweeping is idempotent, and the comparison report references every
// stored run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "app/sweep.hpp"
#include "metrics/run_store.hpp"

namespace dv::app {
namespace {

std::string temp_dir(const std::string& leaf) {
  const auto dir = (std::filesystem::temp_directory_path() / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

SweepConfig grid_config(const std::string& store_dir) {
  SweepConfig cfg;
  cfg.base.dragonfly_p = 2;
  cfg.base.window = 1.0e5;
  cfg.base.synthetic_bytes_per_rank = 8 * 1024;
  cfg.base.seed = 3;
  cfg.base.backend = Backend::kFlow;
  cfg.base.jobs.push_back(JobSpec{});  // overwritten per point
  cfg.workloads = {"uniform_random", "nearest_neighbor"};
  cfg.routings = {"adaptive"};
  cfg.scales = {0.5, 1.0};
  cfg.store_dir = store_dir;
  return cfg;
}

TEST(Sweep, GridProducesOneRunPerPoint) {
  const auto dir = temp_dir("dv_sweep_test_grid");
  const auto res = run_sweep(grid_config(dir));

  // 2 workloads x 1 routing x 2 scales.
  ASSERT_EQ(res.points.size(), 4u);
  metrics::RunStore store(dir);
  EXPECT_EQ(store.size(), 4u);

  std::set<std::uint64_t> uids;
  std::set<std::string> names;
  for (const auto& p : res.points) {
    EXPECT_TRUE(store.contains(p.name)) << p.name;
    EXPECT_EQ(store.info(p.name).uid, p.uid);
    EXPECT_NE(p.uid, 0u);
    uids.insert(p.uid);
    names.insert(p.name);
    EXPECT_GT(p.end_time, 0.0);
    // One packed .dvr per point, named after the point.
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / (p.name + ".dvr")))
        << p.name;
    // The stored run reloads and echoes the point's configuration.
    const auto run = store.load(p.name);
    EXPECT_EQ(run.workload, p.workload);
    EXPECT_EQ(run.routing, p.routing);
  }
  // Every point is distinct content: distinct names AND distinct uids.
  EXPECT_EQ(uids.size(), 4u);
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(sweep_point_name("uniform_random", "adaptive", 0.5,
                             Backend::kFlow),
            "uniform_random-adaptive-x0.5-flow");
  std::filesystem::remove_all(dir);
}

TEST(Sweep, DeterministicAcrossRunsAndIdempotentInPlace) {
  const auto dir_a = temp_dir("dv_sweep_test_det_a");
  const auto dir_b = temp_dir("dv_sweep_test_det_b");
  const auto a = run_sweep(grid_config(dir_a));
  const auto b = run_sweep(grid_config(dir_b));

  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].name, b.points[i].name);
    // Same grid, same seeds: byte-identical packed runs -> equal uids.
    EXPECT_EQ(a.points[i].uid, b.points[i].uid) << a.points[i].name;
  }

  // Re-sweeping into an existing store replaces points in place: same
  // names, same uids, same store size (no _2 suffixes).
  const auto again = run_sweep(grid_config(dir_a));
  metrics::RunStore store(dir_a);
  EXPECT_EQ(store.size(), 4u);
  for (std::size_t i = 0; i < again.points.size(); ++i) {
    EXPECT_EQ(again.points[i].name, a.points[i].name);
    EXPECT_EQ(again.points[i].uid, a.points[i].uid);
  }
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(Sweep, ComparisonReportReferencesEveryRun) {
  const auto dir = temp_dir("dv_sweep_test_report");
  auto cfg = grid_config(dir);
  cfg.report_path = dir + "/report.html";
  const auto res = run_sweep(cfg);
  ASSERT_EQ(res.report_path, cfg.report_path);

  std::ifstream is(cfg.report_path);
  ASSERT_TRUE(is.good());
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string html = buf.str();
  for (const auto& p : res.points) {
    EXPECT_NE(html.find(p.name), std::string::npos) << p.name;
    EXPECT_NE(html.find("uid=" + std::to_string(p.uid)), std::string::npos)
        << p.name;
  }
  EXPECT_NE(html.find("<svg"), std::string::npos);  // comparison panels
  std::filesystem::remove_all(dir);
}

TEST(Sweep, CoarsenedSweepRejectsTerminalLatencySpecsBeforeSimulating) {
  // fig4 maps per-terminal avg_latency, which a coarsened run can only
  // attribute per router — the sweep must refuse up front, before burning
  // any simulation time (the store directory is never even created).
  auto cfg = grid_config(temp_dir("dv_sweep_test_coarse_spec"));
  cfg.base.flow_coarsen = true;
  cfg.report_path = cfg.store_dir + "/report.html";
  cfg.report_spec = "preset:fig4";
  EXPECT_THROW(run_sweep(cfg), Error);
  EXPECT_FALSE(std::filesystem::exists(cfg.store_dir));

  // The default overview spec carries no terminal latency channel, so the
  // same coarsened grid sweeps fine — and records solver telemetry.
  cfg.report_spec = "preset:overview";
  const auto res = run_sweep(cfg);
  ASSERT_EQ(res.points.size(), 4u);
  for (const auto& p : res.points) {
    EXPECT_GT(p.flow.epochs, 0u) << p.name;
    EXPECT_GT(p.flow.solves, 0u) << p.name;
  }
  std::filesystem::remove_all(cfg.store_dir);
}

TEST(Sweep, ValidatesConfiguration) {
  auto cfg = grid_config(temp_dir("dv_sweep_test_validate"));
  cfg.workloads.clear();
  EXPECT_THROW(run_sweep(cfg), Error);
  cfg = grid_config(cfg.store_dir);
  cfg.scales = {0.0};
  EXPECT_THROW(run_sweep(cfg), Error);
  cfg = grid_config(cfg.store_dir);
  cfg.store_dir.clear();
  EXPECT_THROW(run_sweep(cfg), Error);
  cfg = grid_config(temp_dir("dv_sweep_test_validate"));
  cfg.routings = {"not_a_routing"};
  EXPECT_THROW(run_sweep(cfg), Error);
  std::filesystem::remove_all(cfg.store_dir);
}

}  // namespace
}  // namespace dv::app
