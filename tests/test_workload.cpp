// Workload-generator tests: structure of each communication pattern,
// volume accounting, placement mapping.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/workload.hpp"

namespace dv::workload {
namespace {

Config cfg(std::uint32_t ranks, std::uint64_t bytes = 1 << 20) {
  Config c;
  c.ranks = ranks;
  c.total_bytes = bytes;
  c.window = 1.0e5;
  c.seed = 3;
  c.msg_bytes = 4096;
  return c;
}

/// Traffic matrix (rank -> rank -> bytes).
std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>> matrix(
    const std::vector<RankMsg>& msgs) {
  std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>> m;
  for (const auto& msg : msgs) m[msg.src_rank][msg.dst_rank] += msg.bytes;
  return m;
}

class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, BasicInvariants) {
  const auto c = cfg(64);
  const auto msgs = generate(GetParam(), c);
  ASSERT_FALSE(msgs.empty());
  for (const auto& m : msgs) {
    EXPECT_LT(m.src_rank, c.ranks);
    EXPECT_LT(m.dst_rank, c.ranks);
    EXPECT_NE(m.src_rank, m.dst_rank);
    EXPECT_GT(m.bytes, 0u);
    EXPECT_GE(m.time, 0.0);
    EXPECT_LE(m.time, c.window * 1.3);
  }
  // Volume lands close to the target (integer truncation loses a little).
  const auto total = total_bytes(msgs);
  EXPECT_LE(total, c.total_bytes);
  EXPECT_GT(total, c.total_bytes * 85 / 100);
}

TEST_P(AllWorkloads, DeterministicForSeed) {
  const auto a = generate(GetParam(), cfg(48));
  const auto b = generate(GetParam(), cfg(48));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_rank, b[i].src_rank);
    EXPECT_EQ(a[i].dst_rank, b[i].dst_rank);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
  }
}

INSTANTIATE_TEST_SUITE_P(Names, AllWorkloads,
                         ::testing::ValuesIn(workload_names()));

TEST(Workload, NearestNeighborIsARing) {
  const auto m = matrix(generate_nearest_neighbor(cfg(32)));
  for (const auto& [src, row] : m) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(row.begin()->first, (src + 1) % 32);
  }
}

TEST(Workload, UniformRandomCoversManyDestinations) {
  const auto msgs = generate_uniform_random(cfg(64, 8 << 20));
  std::set<std::uint32_t> dsts;
  for (const auto& m : msgs) dsts.insert(m.dst_rank);
  EXPECT_GT(dsts.size(), 48u);
}

TEST(Workload, AmgIs3DHalo) {
  const auto c = cfg(64);  // 4x4x4 grid
  const auto m = matrix(generate_amg(c));
  // Corner rank (0,0,0) has exactly 3 neighbours; interior rank has 6.
  EXPECT_EQ(m.at(0).size(), 3u);
  // rank (1,1,1) = 1 + 4 + 16 = 21 is interior.
  EXPECT_EQ(m.at(21).size(), 6u);
  // Communication is symmetric (each rank talks to its halo partners).
  for (const auto& [src, row] : m) {
    for (const auto& [dst, bytes] : row) {
      EXPECT_TRUE(m.at(dst).count(src))
          << src << "->" << dst << " not reciprocated";
    }
  }
}

TEST(Workload, AmgHasThreeBursts) {
  const auto msgs = generate_amg(cfg(64));
  // Cluster times: all messages fall into 3 windows.
  std::set<int> phases;
  for (const auto& m : msgs) {
    phases.insert(static_cast<int>(m.time / (cfg(64).window / 3.0)));
  }
  EXPECT_EQ(phases.size(), 3u);
}

TEST(Workload, AmrBoxlibConcentratesLoadOnLowRanks) {
  const auto c = cfg(512, 64 << 20);
  const auto msgs = generate_amr_boxlib(c);
  std::uint64_t hot = 0, total = 0;
  const std::uint32_t hot_cutoff = 512 * 6 / 100;
  for (const auto& m : msgs) {
    total += m.bytes;
    if (m.src_rank < hot_cutoff) hot += m.bytes;
  }
  // Paper: first groups/ranks dominate (>60% inter-group traffic).
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.55);
}

TEST(Workload, MinifeIsManyToMany) {
  const auto m = matrix(generate_minife(cfg(64, 32 << 20)));
  // Every rank exchanges with its whole process row+column (plus the
  // butterfly): far more partners than a halo pattern.
  for (const auto& [src, row] : m) {
    EXPECT_GE(row.size(), 10u);
  }
}

TEST(Workload, DemandMatrixConservesBytesAndHasZeroDiagonal) {
  const auto c = cfg(32);
  for (const std::string& name : {"uniform_random", "nearest_neighbor",
                                  "transpose"}) {
    const auto msgs = generate(name, c);
    const auto dm = demand_matrix(msgs, c.ranks);
    ASSERT_EQ(dm.size(), std::size_t{32} * 32);
    std::uint64_t sum = 0;
    for (const auto b : dm) sum += b;
    EXPECT_EQ(sum, total_bytes(msgs)) << name;
    for (std::uint32_t r = 0; r < c.ranks; ++r) {
      EXPECT_EQ(dm[std::size_t{r} * c.ranks + r], 0u) << name;
    }
  }
}

TEST(Workload, DemandMatrixUniformRandomBalancesRows) {
  const auto c = cfg(16, 16 << 20);
  const auto dm = demand_matrix(generate_uniform_random(c), c.ranks);
  const double expect_row =
      static_cast<double>(c.total_bytes) / static_cast<double>(c.ranks);
  for (std::uint32_t r = 0; r < c.ranks; ++r) {
    std::uint64_t row = 0;
    for (std::uint32_t d = 0; d < c.ranks; ++d) {
      row += dm[std::size_t{r} * c.ranks + d];
    }
    // Every source injects the same per-rank share (uniform injection).
    EXPECT_NEAR(static_cast<double>(row), expect_row, expect_row * 0.02) << r;
  }
}

TEST(Workload, DemandMatrixShiftIsASingleDiagonal) {
  auto c = cfg(24);
  c.neighbor_stride = 5;
  const auto dm = demand_matrix(generate_nearest_neighbor(c), c.ranks);
  for (std::uint32_t r = 0; r < c.ranks; ++r) {
    for (std::uint32_t d = 0; d < c.ranks; ++d) {
      const auto bytes = dm[std::size_t{r} * c.ranks + d];
      if (d == (r + c.neighbor_stride) % c.ranks) {
        EXPECT_GT(bytes, 0u) << r << "->" << d;
      } else {
        EXPECT_EQ(bytes, 0u) << r << "->" << d;
      }
    }
  }
}

TEST(Workload, DemandMatrixTransposeIsABijection) {
  // 6x8 grid — the non-square case is where the partner indexing is easy
  // to get wrong (it must land in the transposed pc x pr layout).
  const auto c = cfg(48);
  const auto dm = demand_matrix(generate_transpose(c), c.ranks);
  const std::uint32_t pr = 6, pc = 8;
  std::uint32_t senders = 0;
  for (std::uint32_t r = 0; r < c.ranks; ++r) {
    const std::uint32_t row = r / pc, col = r % pc;
    const std::uint32_t partner = col * pr + row;
    for (std::uint32_t d = 0; d < c.ranks; ++d) {
      const auto bytes = dm[std::size_t{r} * c.ranks + d];
      if (d == partner && partner != r) {
        EXPECT_GT(bytes, 0u) << r << "->" << d;
        ++senders;
      } else {
        EXPECT_EQ(bytes, 0u) << r << "->" << d;
      }
    }
    // Bijection check: decode the partner in the transposed pc x pr
    // layout and map it back — that must recover r.
    const std::uint32_t trow = partner / pr, tcol = partner % pr;
    EXPECT_EQ(tcol * pc + trow, r);
  }
  // Only the fixed points of the transpose map are silent (two ranks on a
  // 6x8 grid); everyone else sends.
  EXPECT_GT(senders, c.ranks * 3 / 4);
}

TEST(Workload, DemandMatrixValidatesRanks) {
  const std::vector<RankMsg> msgs = {{0, 9, 100, 0.0}};
  EXPECT_THROW(demand_matrix(msgs, 0), Error);
  EXPECT_THROW(demand_matrix(msgs, 4), Error);  // dst 9 out of range
  const auto dm = demand_matrix(msgs, 10);
  EXPECT_EQ(dm[9], 100u);
}

TEST(Workload, VolumeOrderingMatchesTableI) {
  const auto apps = paper_applications();
  ASSERT_EQ(apps.size(), 3u);
  EXPECT_LT(apps[0].scaled_bytes, apps[1].scaled_bytes);  // AMG < AMR
  EXPECT_LT(apps[1].scaled_bytes * 4, apps[2].scaled_bytes);  // << MiniFE
  EXPECT_EQ(app_info("amg").ranks, 1728u);
  EXPECT_EQ(app_info("minife").ranks, 1152u);
  EXPECT_THROW(app_info("bogus"), Error);
}

TEST(Workload, MapToTerminalsUsesPlacement) {
  const auto topo = topo::Dragonfly::canonical(2);
  const auto placement = placement::place_jobs(
      topo, {{"a", 16, placement::Policy::kRandomRouter}}, 5);
  const auto msgs = generate_nearest_neighbor(cfg(16));
  const auto mapped = map_to_terminals(msgs, placement, 0);
  ASSERT_FALSE(mapped.empty());
  for (const auto& m : mapped) {
    EXPECT_NE(m.src_terminal, m.dst_terminal);
    EXPECT_EQ(m.job, 0);
    // Source terminal belongs to the job.
    EXPECT_EQ(placement.job_of[m.src_terminal], 0);
    EXPECT_EQ(placement.job_of[m.dst_terminal], 0);
  }
}

TEST(Workload, MapToTerminalsRejectsOversizedRanks) {
  const auto topo = topo::Dragonfly::canonical(2);
  const auto placement = placement::place_jobs(
      topo, {{"a", 8, placement::Policy::kContiguous}}, 1);
  const auto msgs = generate_nearest_neighbor(cfg(16));
  EXPECT_THROW(map_to_terminals(msgs, placement, 0), Error);
  EXPECT_THROW(map_to_terminals(msgs, placement, 1), Error);
}

TEST(Workload, ConfigValidation) {
  Config c;  // zeroed
  EXPECT_THROW(generate_uniform_random(c), Error);
  c.ranks = 8;
  EXPECT_THROW(generate_uniform_random(c), Error);  // no volume
  c.total_bytes = 100;
  c.window = -1;
  EXPECT_THROW(generate_uniform_random(c), Error);
  EXPECT_THROW(generate("nope", cfg(8)), Error);
}

}  // namespace
}  // namespace dv::workload
