// Shared fixtures for the VA-layer tests: a small simulated run with jobs,
// time-series sampling, and mixed traffic.
#pragma once

#include "core/datatable.hpp"
#include "netsim/network.hpp"
#include "placement/placement.hpp"
#include "workload/workload.hpp"

namespace dv::testing {

struct MiniRun {
  topo::Dragonfly topo = topo::Dragonfly::canonical(2);  // 9 groups, 72 terms
  placement::Placement placement;
  metrics::RunMetrics run;
};

/// Two jobs (nearest-neighbour + uniform random) on a p=2 dragonfly with
/// sampling enabled; deterministic.
inline MiniRun make_mini_run(routing::Algo algo = routing::Algo::kAdaptive,
                             placement::Policy p0 = placement::Policy::kContiguous,
                             placement::Policy p1 = placement::Policy::kRandomRouter,
                             std::uint64_t seed = 21) {
  MiniRun out;
  out.placement = placement::place_jobs(
      out.topo, {{"nn_job", 12, p0}, {"ur_job", 12, p1}}, seed);

  workload::Config cfg;
  cfg.ranks = 12;
  cfg.total_bytes = 3 << 20;
  cfg.window = 4.0e4;
  cfg.seed = seed;
  cfg.msg_bytes = 4096;

  netsim::Params params;
  params.packet_size = 1024;
  params.event_budget = 20'000'000;
  netsim::Network net(out.topo, algo, params, seed);
  net.set_jobs(out.placement);
  net.set_labels("mixed", "test_placement", {"nn_job", "ur_job"});
  net.add_messages(workload::map_to_terminals(
      workload::generate_nearest_neighbor(cfg), out.placement, 0));
  net.add_messages(workload::map_to_terminals(
      workload::generate_uniform_random(cfg), out.placement, 1));
  net.enable_sampling(500.0);
  out.run = net.run();
  return out;
}

}  // namespace dv::testing
