// Flow-backend unit tests: the max-min water-filling solver on
// hand-computable fixtures, convergence properties on randomized inputs,
// and FlowNetwork end-to-end invariants (conservation, determinism,
// sampling consistency).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "flow/flow.hpp"
#include "metrics/dvr.hpp"
#include "util/rng.hpp"

namespace dv::flow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SolverFlow make_flow(std::vector<std::uint32_t> links, double cap = kInf) {
  SolverFlow f;
  f.links = std::move(links);
  f.rate_cap = cap;
  return f;
}

TEST(FlowSolver, BottleneckSharedEqually) {
  // Two flows over one link of capacity 10: max-min gives 5 each.
  const auto res = water_fill({10.0}, {make_flow({0}), make_flow({0})});
  ASSERT_EQ(res.rates.size(), 2u);
  EXPECT_DOUBLE_EQ(res.rates[0], 5.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 5.0);
  EXPECT_DOUBLE_EQ(res.link_load[0], 10.0);
}

TEST(FlowSolver, UnequalPathLengths) {
  // f0 crosses only link 0 (cap 10); f1 crosses links 0 and 1 (cap 4).
  // Progressive filling: both rise to 4 (link 1 exhausts, freezing f1),
  // then f0 alone takes link 0's remaining headroom: 10 - 8 = 2 -> 6.
  const auto res =
      water_fill({10.0, 4.0}, {make_flow({0}), make_flow({0, 1})});
  EXPECT_DOUBLE_EQ(res.rates[0], 6.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 4.0);
  EXPECT_DOUBLE_EQ(res.link_load[0], 10.0);
  EXPECT_DOUBLE_EQ(res.link_load[1], 4.0);
}

TEST(FlowSolver, SaturatedLinkFixpoint) {
  // Classic 2-link chain: caps {1, 2}; f0 on link 0, f1 on both, f2 on
  // link 1. Link 0 exhausts first at rate 1/2 (freezing f0 and f1), then
  // f2 fills link 1 to capacity: 2 - 1/2 = 3/2.
  const auto res = water_fill(
      {1.0, 2.0}, {make_flow({0}), make_flow({0, 1}), make_flow({1})});
  EXPECT_DOUBLE_EQ(res.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(res.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(res.rates[2], 1.5);
  EXPECT_DOUBLE_EQ(res.link_load[0], 1.0);
  EXPECT_DOUBLE_EQ(res.link_load[1], 2.0);
}

TEST(FlowSolver, ZeroDemandFlowsStayAtZero) {
  // A zero-cap flow must not consume capacity or stall the round loop.
  const auto res = water_fill(
      {8.0}, {make_flow({0}, 0.0), make_flow({0}), make_flow({0})});
  EXPECT_DOUBLE_EQ(res.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 4.0);
  EXPECT_DOUBLE_EQ(res.rates[2], 4.0);
}

TEST(FlowSolver, RateCapsFreezeBeforeTheLink) {
  // f0 capped at 2 frees its share for f1: 2 + 8 = 10.
  const auto res =
      water_fill({10.0}, {make_flow({0}, 2.0), make_flow({0})});
  EXPECT_DOUBLE_EQ(res.rates[0], 2.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 8.0);
}

TEST(FlowSolver, LinklessCappedFlowRunsAtItsCap) {
  const auto res = water_fill({5.0}, {make_flow({}, 3.0), make_flow({0})});
  EXPECT_DOUBLE_EQ(res.rates[0], 3.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 5.0);
}

TEST(FlowSolver, EdgeCasesAndValidation) {
  // No flows: empty allocation, zero loads.
  const auto empty = water_fill({1.0, 2.0}, {});
  EXPECT_TRUE(empty.rates.empty());
  EXPECT_DOUBLE_EQ(empty.link_load[0], 0.0);
  // A flow with no links and no cap has no finite max-min rate.
  EXPECT_THROW(water_fill({1.0}, {make_flow({})}), Error);
  // Out-of-range link index and negative cap are rejected.
  EXPECT_THROW(water_fill({1.0}, {make_flow({7})}), Error);
  EXPECT_THROW(water_fill({1.0}, {make_flow({0}, -1.0)}), Error);
}

TEST(FlowSolver, RepeatedLinksCountTwice) {
  // A flow listed twice on one link consumes double share there — the
  // solver must stay consistent (load counts every crossing).
  const auto res = water_fill({6.0}, {make_flow({0, 0}), make_flow({0})});
  // Uniform filling: increment limited by 6 / 3 crossings = 2.
  EXPECT_DOUBLE_EQ(res.rates[0], 2.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 2.0);
  EXPECT_DOUBLE_EQ(res.link_load[0], 6.0);
}

/// Max-min certificate on randomized inputs: feasibility (no link above
/// capacity) and saturation (every flow is at its cap or crosses at least
/// one saturated link), plus the round bound that guarantees termination.
TEST(FlowSolver, RandomizedMaxMinCertificate) {
  Rng rng(2024, 7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t nl = 1 + rng.next_below(12);
    const std::size_t nf = 1 + rng.next_below(24);
    std::vector<double> caps(nl);
    for (auto& c : caps) c = 0.5 + rng.next_double() * 20.0;
    std::vector<SolverFlow> flows(nf);
    for (auto& f : flows) {
      const std::size_t degree = 1 + rng.next_below(std::min<std::size_t>(nl, 4));
      for (std::size_t k = 0; k < degree; ++k) {
        f.links.push_back(static_cast<std::uint32_t>(rng.next_below(nl)));
      }
      if (rng.next_bool(0.3)) f.rate_cap = rng.next_double() * 5.0;
    }

    const auto res = water_fill(caps, flows);
    ASSERT_EQ(res.rates.size(), nf);
    EXPECT_LE(res.rounds, nf + nl + 1);

    for (std::size_t l = 0; l < nl; ++l) {
      EXPECT_LE(res.link_load[l], caps[l] * (1.0 + 1e-9)) << "trial " << trial;
    }
    for (std::size_t f = 0; f < nf; ++f) {
      EXPECT_GE(res.rates[f], 0.0);
      const bool at_cap =
          std::isfinite(flows[f].rate_cap) &&
          res.rates[f] >= flows[f].rate_cap * (1.0 - 1e-9) - 1e-12;
      bool on_saturated = false;
      for (const std::uint32_t l : flows[f].links) {
        if (res.link_load[l] >= caps[l] * (1.0 - 1e-6)) on_saturated = true;
      }
      EXPECT_TRUE(at_cap || on_saturated)
          << "trial " << trial << " flow " << f << " rate " << res.rates[f]
          << " is neither capped nor bottlenecked";
    }
  }
}

// ------------------------------------------------- incremental re-solve

TEST(FlowSolver, IncrementalRemovalExactOnDyadicCascade) {
  // All-dyadic fixture, so the incremental path must land bit-for-bit on
  // the fresh solve. Links: 0 (cap 1/2), 1 (cap 3/2), 2 (cap 3).
  // Flows: h={0,2}, x={1}, g={1,2}, f={2}.
  // Full solve: link 0 freezes h at 1/2; link 1 freezes x,g at 3/4; f
  // takes link 2's remainder: 3 - 1/2 - 3/4 = 7/4.
  std::vector<double> caps{0.5, 1.5, 3.0};
  std::vector<SolverFlow> flows{make_flow({0, 2}), make_flow({1}),
                                make_flow({1, 2}), make_flow({2})};
  auto state = water_fill(caps, flows);
  EXPECT_EQ(state.rates[0], 0.5);
  EXPECT_EQ(state.rates[1], 0.75);
  EXPECT_EQ(state.rates[2], 0.75);
  EXPECT_EQ(state.rates[3], 1.75);

  // Remove x. The seed set is {g} (the only survivor on link 1); its
  // restricted pass lands at 3/4 (link 2 headroom), which *lowers* the
  // water level of saturated link 2 below f's frozen 7/4 — f must be
  // released and pushed down. Fixpoint: g = f = 5/4 (not monotone!).
  // cascade_frac = 1.0: the cascade (2 of 3 survivors) is the point here,
  // not the sparseness bail.
  const auto inc = water_fill_removed(caps, flows, {1}, state, 1.0);
  EXPECT_FALSE(inc.full_solve);
  EXPECT_EQ(inc.released, 2u);
  EXPECT_EQ(state.rates[0], 0.5);
  EXPECT_EQ(state.rates[1], 0.0);  // removed rates are zeroed
  EXPECT_EQ(state.rates[2], 1.25);
  EXPECT_EQ(state.rates[3], 1.25);
  EXPECT_EQ(state.link_load[0], 0.5);
  EXPECT_EQ(state.link_load[1], 1.25);
  EXPECT_EQ(state.link_load[2], 3.0);

  // The surviving allocation is bitwise the fresh solve's.
  flows[1].rate_cap = 0.0;
  const auto ref = water_fill(caps, flows);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_EQ(state.rates[f], ref.rates[f]) << "flow " << f;
  }
}

TEST(FlowSolver, IncrementalRemovalOfIsolatedFlowTouchesNothing) {
  // The removed flow shares no link with any survivor: the seed set is
  // empty, nothing re-solves, and the frozen rates stay bitwise put.
  std::vector<double> caps{2.0, 7.0};
  std::vector<SolverFlow> flows{make_flow({0}), make_flow({1}),
                                make_flow({1})};
  auto state = water_fill(caps, flows);
  const double keep1 = state.rates[1], keep2 = state.rates[2];

  const auto inc = water_fill_removed(caps, flows, {0}, state);
  EXPECT_FALSE(inc.full_solve);
  EXPECT_EQ(inc.released, 0u);
  EXPECT_EQ(state.rates[0], 0.0);
  EXPECT_EQ(state.rates[1], keep1);
  EXPECT_EQ(state.rates[2], keep2);
  EXPECT_EQ(state.link_load[0], 0.0);
  EXPECT_EQ(state.link_load[1], 7.0);
}

TEST(FlowSolver, IncrementalRemovalBailsWhenTheCascadeIsWide) {
  // Ten equal flows on one link: removing one perturbs every survivor, so
  // the restricted re-solve would touch the whole problem. The function
  // must report full_solve instead of pretending the update was sparse.
  std::vector<double> caps{10.0};
  std::vector<SolverFlow> flows(10, make_flow({0}));
  auto state = water_fill(caps, flows);
  EXPECT_DOUBLE_EQ(state.rates[0], 1.0);

  const auto inc = water_fill_removed(caps, flows, {0}, state);
  EXPECT_TRUE(inc.full_solve);

  // The caller's contract: mark removed flows absent and full-solve.
  flows[0].rate_cap = 0.0;
  state = water_fill(caps, flows);
  EXPECT_DOUBLE_EQ(state.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(state.rates[5], 10.0 / 9.0);
}

/// The property the event engine's drain batching leans on: across any
/// sequence of completion-driven shrinks, a successful incremental
/// re-solve equals a from-scratch water_fill over the survivors (and the
/// wide-cascade bail is exercised often enough to trust the fallback).
TEST(FlowSolver, IncrementalMatchesFullAcrossRandomShrinkSequences) {
  Rng rng(4096, 21);
  int incremental_successes = 0, full_bails = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t nl = 2 + rng.next_below(10);
    const std::size_t nf = 4 + rng.next_below(20);
    std::vector<double> caps(nl);
    for (auto& c : caps) c = 0.5 + rng.next_double() * 20.0;
    std::vector<SolverFlow> flows(nf);
    for (auto& f : flows) {
      const std::size_t degree =
          1 + rng.next_below(std::min<std::size_t>(nl, 4));
      for (std::size_t k = 0; k < degree; ++k) {
        f.links.push_back(static_cast<std::uint32_t>(rng.next_below(nl)));
      }
      if (rng.next_bool(0.3)) f.rate_cap = 0.1 + rng.next_double() * 5.0;
    }

    auto state = water_fill(caps, flows);
    std::vector<std::uint32_t> alive(nf);
    std::iota(alive.begin(), alive.end(), 0u);
    while (alive.size() > 1) {
      // Completions arrive in small batches: remove 1..|alive|/4 flows.
      const std::size_t nrem =
          1 + rng.next_below(std::max<std::size_t>(1, alive.size() / 4));
      for (std::size_t k = 0; k < nrem; ++k) {  // partial Fisher-Yates
        std::swap(alive[k], alive[k + rng.next_below(alive.size() - k)]);
      }
      std::vector<std::uint32_t> removed(alive.begin(), alive.begin() + nrem);
      std::sort(removed.begin(), removed.end());

      const auto inc = water_fill_removed(caps, flows, removed, state);
      for (const std::uint32_t id : removed) flows[id].rate_cap = 0.0;
      alive.erase(alive.begin(), alive.begin() + nrem);

      const auto ref = water_fill(caps, flows);
      if (inc.full_solve) {
        ++full_bails;
        state = ref;
        continue;
      }
      ++incremental_successes;
      ASSERT_EQ(state.rates.size(), ref.rates.size());
      for (std::size_t f = 0; f < nf; ++f) {
        EXPECT_NEAR(state.rates[f], ref.rates[f],
                    1e-9 * (1.0 + std::abs(ref.rates[f])))
            << "trial " << trial << " flow " << f;
      }
      for (std::size_t l = 0; l < nl; ++l) {
        EXPECT_NEAR(state.link_load[l], ref.link_load[l],
                    1e-9 * (1.0 + caps[l]))
            << "trial " << trial << " link " << l;
        // Feasibility holds on the incremental state itself.
        EXPECT_LE(state.link_load[l], caps[l] * (1.0 + 1e-9));
      }
    }
  }
  // Both paths must actually run, or the suite proves nothing.
  EXPECT_GT(incremental_successes, 50);
  EXPECT_GT(full_bails, 10);
}

// ---------------------------------------------------------- FlowNetwork

netsim::Message msg(std::uint32_t src, std::uint32_t dst,
                    std::uint64_t bytes, double t, std::int32_t job = -1) {
  return netsim::Message{src, dst, bytes, t, job};
}

TEST(FlowNetwork, DrainsEverythingAndConservesBytes) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kMinimal);
  net.add_messages({msg(0, 9, 64 * 1024, 0.0), msg(3, 40, 128 * 1024, 500.0),
                    msg(40, 3, 32 * 1024, 1000.0)});
  const auto run = net.run();

  EXPECT_GT(run.end_time, 0.0);
  EXPECT_DOUBLE_EQ(run.total_injected(), 64.0 * 1024 + 128 * 1024 + 32 * 1024);
  // Each message arrives as ceil(bytes / packet_size) packets.
  const std::uint64_t expect_pkts = (64 * 1024 + 2047) / 2048 +
                                    (128 * 1024 + 2047) / 2048 +
                                    (32 * 1024 + 2047) / 2048;
  EXPECT_EQ(run.total_packets_finished(), expect_pkts);
  // Latency can never undercut the fixed path latency.
  for (const auto& t : run.terminals) {
    if (t.packets_finished) {
      EXPECT_GT(t.avg_latency(), 0.0);
    }
  }
  EXPECT_GT(net.epochs(), 0u);
  EXPECT_EQ(net.bundles(), 3u);
}

TEST(FlowNetwork, EmptyRunIsValid) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kMinimal);
  const auto run = net.run();
  EXPECT_DOUBLE_EQ(run.total_injected(), 0.0);
  EXPECT_EQ(run.total_packets_finished(), 0u);
  EXPECT_EQ(run.local_links.size(),
            static_cast<std::size_t>(topo.num_local_links()));
  EXPECT_EQ(run.global_links.size(),
            static_cast<std::size_t>(topo.num_global_links()));
}

TEST(FlowNetwork, RunIsDeterministic) {
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  Rng rng(11, 3);
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto d = s;
    while (d == s) {
      d = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    ms.push_back(msg(s, d, 4096 + 512 * i, rng.next_double() * 1e5));
  }
  auto run_once = [&] {
    FlowNetwork net(topo, routing::Algo::kAdaptive, {}, 42);
    net.add_messages(ms);
    net.enable_sampling(1000.0);
    return net.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(metrics::run_content_uid(a), metrics::run_content_uid(b));
}

TEST(FlowNetwork, SampledFramesSumToCumulativeTotals) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kNonMinimal, {}, 7);
  std::vector<netsim::Message> ms;
  for (std::uint32_t t = 0; t < 32; ++t) {
    ms.push_back(msg(t, (t + 17) % topo.num_terminals(), 16 * 1024,
                     250.0 * t));
  }
  net.add_messages(ms);
  net.enable_sampling(500.0);
  const auto run = net.run();

  ASSERT_TRUE(run.has_time_series());
  ASSERT_GT(run.local_traffic_ts.frames(), 0u);
  // Frames are per-epoch deltas: summed over time they must reproduce the
  // cumulative per-class totals (float accumulation tolerance).
  auto series_total = [](const metrics::SampledSeries& s) {
    double sum = 0.0;
    for (std::size_t f = 0; f < s.frames(); ++f) sum += s.frame_total(f);
    return sum;
  };
  EXPECT_NEAR(series_total(run.local_traffic_ts), run.total_local_traffic(),
              run.total_local_traffic() * 1e-4 + 1.0);
  EXPECT_NEAR(series_total(run.global_traffic_ts), run.total_global_traffic(),
              run.total_global_traffic() * 1e-4 + 1.0);
  EXPECT_NEAR(series_total(run.term_traffic_ts), run.total_terminal_traffic(),
              run.total_terminal_traffic() * 1e-4 + 1.0);
  // The sampled span covers the whole run.
  EXPECT_GE(static_cast<double>(run.local_traffic_ts.frames()) *
                run.sample_dt,
            run.end_time - run.sample_dt);
}

TEST(FlowNetwork, ValidatesInputs) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kMinimal);
  EXPECT_THROW(net.add_message(msg(0, 0, 100, 0.0)), Error);      // self-send
  EXPECT_THROW(net.add_message(msg(0, 100000, 100, 0.0)), Error); // range
  EXPECT_THROW(net.add_message(msg(0, 1, 0, 0.0)), Error);        // empty
  EXPECT_THROW(net.add_message(msg(0, 1, 100, -1.0)), Error);     // time
  EXPECT_THROW(net.enable_sampling(0.0), Error);
  EXPECT_THROW(net.set_epoch_dt(-1.0), Error);
  EXPECT_THROW(net.set_epoch_dt(0.0), Error);
  net.add_message(msg(0, 1, 100, 0.0));
  (void)net.run();
  EXPECT_THROW(net.run(), Error);                   // single-shot
  EXPECT_THROW(net.add_message(msg(1, 2, 1, 0.0)), Error);  // post-run
}

TEST(FlowNetwork, EpochLengthDoesNotChangeTotals) {
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  for (std::uint32_t t = 0; t < 16; ++t) {
    ms.push_back(msg(4 * t, (4 * t + 5) % topo.num_terminals(), 64 * 1024,
                     100.0 * t));
  }
  auto totals = [&](double epoch_dt) {
    FlowNetwork net(topo, routing::Algo::kMinimal, {}, 9);
    net.add_messages(ms);
    if (epoch_dt > 0) net.set_epoch_dt(epoch_dt);
    const auto run = net.run();
    return std::pair<double, double>(run.total_injected(),
                                     run.total_local_traffic() +
                                         run.total_global_traffic());
  };
  const auto coarse = totals(0.0);
  const auto fine = totals(50.0);
  // Finer epochs refine *when* bytes move, never *how many*: minimal
  // routing fixes the paths, so per-class traffic is epoch-invariant.
  EXPECT_DOUBLE_EQ(coarse.first, fine.first);
  EXPECT_NEAR(coarse.second, fine.second, coarse.second * 1e-9);
}

TEST(FlowNetwork, EventSteppingIsBitIdenticalToFixedOnAlignedCompletions) {
  // When every activation and completion lands on an epoch boundary, the
  // event engine visits a subset of the fixed-epoch solve points with the
  // same state at each, so the sampled record must be *bitwise* identical
  // (the fixed-epoch loop is the PR-8 baseline kept for exactly this).
  // Construction: unit bandwidths, disjoint same-router pairs (inj+ej
  // links only, no sharing -> every rate is exactly 1.0 byte/ns), message
  // sizes in multiples of 4096 = 16 x 256-ns frames, issues at 0 and 2048.
  const auto topo = topo::Dragonfly::canonical(2);
  netsim::Params prm;
  prm.terminal_bandwidth = 1.0;
  prm.local_bandwidth = 1.0;
  prm.global_bandwidth = 1.0;
  std::vector<netsim::Message> ms;
  for (std::uint32_t r = 0; r < topo.num_routers(); ++r) {
    ms.push_back(msg(2 * r, 2 * r + 1, 4096ull * (1 + r % 3), 0.0));
    if (r % 2 == 0) ms.push_back(msg(2 * r, 2 * r + 1, 4096, 2048.0));
  }
  auto run_stepping = [&](FlowNetwork::Stepping s) {
    FlowNetwork net(topo, routing::Algo::kMinimal, prm, 3);
    net.set_stepping(s);
    net.add_messages(ms);
    net.enable_sampling(256.0);
    return net.run();
  };
  const auto event = run_stepping(FlowNetwork::Stepping::kEvent);
  const auto fixed = run_stepping(FlowNetwork::Stepping::kFixedEpoch);
  EXPECT_DOUBLE_EQ(event.end_time, fixed.end_time);
  EXPECT_EQ(metrics::run_content_uid(event), metrics::run_content_uid(fixed));
}

TEST(FlowNetwork, EventAndFixedSteppingAgreeOnTotals) {
  // On arbitrary (non-aligned) traffic the two steppings visit different
  // solve points, but under minimal routing the paths are fixed, so what
  // they deliver — bytes, packets, per-class traffic — must agree.
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  Rng rng(17, 5);
  for (int i = 0; i < 48; ++i) {
    const auto s =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto d = s;
    while (d == s) {
      d = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    ms.push_back(msg(s, d, 3000 + 700 * i, rng.next_double() * 5e4));
  }
  auto run_stepping = [&](FlowNetwork::Stepping s) {
    FlowNetwork net(topo, routing::Algo::kMinimal, {}, 11);
    net.set_stepping(s);
    net.add_messages(ms);
    return net.run();
  };
  const auto event = run_stepping(FlowNetwork::Stepping::kEvent);
  const auto fixed = run_stepping(FlowNetwork::Stepping::kFixedEpoch);
  EXPECT_DOUBLE_EQ(event.total_injected(), fixed.total_injected());
  EXPECT_EQ(event.total_packets_finished(), fixed.total_packets_finished());
  EXPECT_NEAR(event.total_local_traffic(), fixed.total_local_traffic(),
              fixed.total_local_traffic() * 1e-9 + 1.0);
  EXPECT_NEAR(event.total_global_traffic(), fixed.total_global_traffic(),
              fixed.total_global_traffic() * 1e-9 + 1.0);
  EXPECT_NEAR(event.total_terminal_traffic(), fixed.total_terminal_traffic(),
              fixed.total_terminal_traffic() * 1e-9 + 1.0);
}

TEST(FlowNetwork, CoarseningConservesTrafficUnderMinimalRouting) {
  // Coarsening changes the solver's granularity (router pairs), not what
  // moves: under minimal routing every (src,dst) pair's path is fixed and
  // identical for all terminals of a router pair, so per-link traffic and
  // per-terminal delivery accounting must survive the aggregation.
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  Rng rng(5, 9);
  for (int i = 0; i < 120; ++i) {
    const auto s =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto d = s;
    while (topo.terminal_router(d) == topo.terminal_router(s)) {
      d = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    ms.push_back(msg(s, d, 1024 + 512 * i, rng.next_double() * 5e4));
  }
  auto run_mode = [&](bool coarse) {
    FlowNetwork net(topo, routing::Algo::kMinimal, {}, 13);
    net.add_messages(ms);
    if (coarse) net.enable_coarsening();
    auto run = net.run();
    return std::pair<metrics::RunMetrics, std::size_t>(std::move(run),
                                                       net.bundles());
  };
  const auto [fine, fine_bundles] = run_mode(false);
  const auto [coarse, coarse_bundles] = run_mode(true);

  // The whole point of coarsening: fewer solver variables.
  EXPECT_GT(coarse_bundles, 0u);
  EXPECT_LT(coarse_bundles, fine_bundles);

  EXPECT_DOUBLE_EQ(coarse.total_injected(), fine.total_injected());
  EXPECT_EQ(coarse.total_packets_finished(), fine.total_packets_finished());
  ASSERT_EQ(coarse.local_links.size(), fine.local_links.size());
  for (std::size_t i = 0; i < fine.local_links.size(); ++i) {
    EXPECT_NEAR(coarse.local_links[i].traffic, fine.local_links[i].traffic,
                fine.local_links[i].traffic * 1e-9 + 1e-6)
        << "local link " << i;
  }
  ASSERT_EQ(coarse.global_links.size(), fine.global_links.size());
  for (std::size_t i = 0; i < fine.global_links.size(); ++i) {
    EXPECT_NEAR(coarse.global_links[i].traffic, fine.global_links[i].traffic,
                fine.global_links[i].traffic * 1e-9 + 1e-6)
        << "global link " << i;
  }
  // Per-terminal message attribution fans back out: delivered packet
  // counts are per-message facts (exact); injected bytes accumulate as
  // fractional drains in per-terminal mode, so match to FP tolerance.
  ASSERT_EQ(coarse.terminals.size(), fine.terminals.size());
  for (std::size_t t = 0; t < fine.terminals.size(); ++t) {
    EXPECT_NEAR(coarse.terminals[t].data_size, fine.terminals[t].data_size,
                fine.terminals[t].data_size * 1e-9 + 1e-6)
        << "terminal " << t;
    EXPECT_EQ(coarse.terminals[t].packets_finished,
              fine.terminals[t].packets_finished)
        << "terminal " << t;
  }
  EXPECT_NEAR(coarse.total_terminal_traffic(), fine.total_terminal_traffic(),
              fine.total_terminal_traffic() * 1e-9 + 1.0);
}

TEST(FlowNetwork, CoarsenedRunIsDeterministic) {
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  Rng rng(23, 1);
  for (int i = 0; i < 64; ++i) {
    const auto s =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto d = s;
    while (d == s) {
      d = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    ms.push_back(msg(s, d, 4096 + 256 * i, rng.next_double() * 1e5));
  }
  auto run_once = [&] {
    FlowNetwork net(topo, routing::Algo::kAdaptive, {}, 42);
    net.add_messages(ms);
    net.enable_coarsening();
    net.enable_sampling(1000.0);
    return net.run();
  };
  EXPECT_EQ(metrics::run_content_uid(run_once()),
            metrics::run_content_uid(run_once()));
}

}  // namespace
}  // namespace dv::flow
