// Flow-backend unit tests: the max-min water-filling solver on
// hand-computable fixtures, convergence properties on randomized inputs,
// and FlowNetwork end-to-end invariants (conservation, determinism,
// sampling consistency).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "flow/flow.hpp"
#include "metrics/dvr.hpp"
#include "util/rng.hpp"

namespace dv::flow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SolverFlow make_flow(std::vector<std::uint32_t> links, double cap = kInf) {
  SolverFlow f;
  f.links = std::move(links);
  f.rate_cap = cap;
  return f;
}

TEST(FlowSolver, BottleneckSharedEqually) {
  // Two flows over one link of capacity 10: max-min gives 5 each.
  const auto res = water_fill({10.0}, {make_flow({0}), make_flow({0})});
  ASSERT_EQ(res.rates.size(), 2u);
  EXPECT_DOUBLE_EQ(res.rates[0], 5.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 5.0);
  EXPECT_DOUBLE_EQ(res.link_load[0], 10.0);
}

TEST(FlowSolver, UnequalPathLengths) {
  // f0 crosses only link 0 (cap 10); f1 crosses links 0 and 1 (cap 4).
  // Progressive filling: both rise to 4 (link 1 exhausts, freezing f1),
  // then f0 alone takes link 0's remaining headroom: 10 - 8 = 2 -> 6.
  const auto res =
      water_fill({10.0, 4.0}, {make_flow({0}), make_flow({0, 1})});
  EXPECT_DOUBLE_EQ(res.rates[0], 6.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 4.0);
  EXPECT_DOUBLE_EQ(res.link_load[0], 10.0);
  EXPECT_DOUBLE_EQ(res.link_load[1], 4.0);
}

TEST(FlowSolver, SaturatedLinkFixpoint) {
  // Classic 2-link chain: caps {1, 2}; f0 on link 0, f1 on both, f2 on
  // link 1. Link 0 exhausts first at rate 1/2 (freezing f0 and f1), then
  // f2 fills link 1 to capacity: 2 - 1/2 = 3/2.
  const auto res = water_fill(
      {1.0, 2.0}, {make_flow({0}), make_flow({0, 1}), make_flow({1})});
  EXPECT_DOUBLE_EQ(res.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(res.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(res.rates[2], 1.5);
  EXPECT_DOUBLE_EQ(res.link_load[0], 1.0);
  EXPECT_DOUBLE_EQ(res.link_load[1], 2.0);
}

TEST(FlowSolver, ZeroDemandFlowsStayAtZero) {
  // A zero-cap flow must not consume capacity or stall the round loop.
  const auto res = water_fill(
      {8.0}, {make_flow({0}, 0.0), make_flow({0}), make_flow({0})});
  EXPECT_DOUBLE_EQ(res.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 4.0);
  EXPECT_DOUBLE_EQ(res.rates[2], 4.0);
}

TEST(FlowSolver, RateCapsFreezeBeforeTheLink) {
  // f0 capped at 2 frees its share for f1: 2 + 8 = 10.
  const auto res =
      water_fill({10.0}, {make_flow({0}, 2.0), make_flow({0})});
  EXPECT_DOUBLE_EQ(res.rates[0], 2.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 8.0);
}

TEST(FlowSolver, LinklessCappedFlowRunsAtItsCap) {
  const auto res = water_fill({5.0}, {make_flow({}, 3.0), make_flow({0})});
  EXPECT_DOUBLE_EQ(res.rates[0], 3.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 5.0);
}

TEST(FlowSolver, EdgeCasesAndValidation) {
  // No flows: empty allocation, zero loads.
  const auto empty = water_fill({1.0, 2.0}, {});
  EXPECT_TRUE(empty.rates.empty());
  EXPECT_DOUBLE_EQ(empty.link_load[0], 0.0);
  // A flow with no links and no cap has no finite max-min rate.
  EXPECT_THROW(water_fill({1.0}, {make_flow({})}), Error);
  // Out-of-range link index and negative cap are rejected.
  EXPECT_THROW(water_fill({1.0}, {make_flow({7})}), Error);
  EXPECT_THROW(water_fill({1.0}, {make_flow({0}, -1.0)}), Error);
}

TEST(FlowSolver, RepeatedLinksCountTwice) {
  // A flow listed twice on one link consumes double share there — the
  // solver must stay consistent (load counts every crossing).
  const auto res = water_fill({6.0}, {make_flow({0, 0}), make_flow({0})});
  // Uniform filling: increment limited by 6 / 3 crossings = 2.
  EXPECT_DOUBLE_EQ(res.rates[0], 2.0);
  EXPECT_DOUBLE_EQ(res.rates[1], 2.0);
  EXPECT_DOUBLE_EQ(res.link_load[0], 6.0);
}

/// Max-min certificate on randomized inputs: feasibility (no link above
/// capacity) and saturation (every flow is at its cap or crosses at least
/// one saturated link), plus the round bound that guarantees termination.
TEST(FlowSolver, RandomizedMaxMinCertificate) {
  Rng rng(2024, 7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t nl = 1 + rng.next_below(12);
    const std::size_t nf = 1 + rng.next_below(24);
    std::vector<double> caps(nl);
    for (auto& c : caps) c = 0.5 + rng.next_double() * 20.0;
    std::vector<SolverFlow> flows(nf);
    for (auto& f : flows) {
      const std::size_t degree = 1 + rng.next_below(std::min<std::size_t>(nl, 4));
      for (std::size_t k = 0; k < degree; ++k) {
        f.links.push_back(static_cast<std::uint32_t>(rng.next_below(nl)));
      }
      if (rng.next_bool(0.3)) f.rate_cap = rng.next_double() * 5.0;
    }

    const auto res = water_fill(caps, flows);
    ASSERT_EQ(res.rates.size(), nf);
    EXPECT_LE(res.rounds, nf + nl + 1);

    for (std::size_t l = 0; l < nl; ++l) {
      EXPECT_LE(res.link_load[l], caps[l] * (1.0 + 1e-9)) << "trial " << trial;
    }
    for (std::size_t f = 0; f < nf; ++f) {
      EXPECT_GE(res.rates[f], 0.0);
      const bool at_cap =
          std::isfinite(flows[f].rate_cap) &&
          res.rates[f] >= flows[f].rate_cap * (1.0 - 1e-9) - 1e-12;
      bool on_saturated = false;
      for (const std::uint32_t l : flows[f].links) {
        if (res.link_load[l] >= caps[l] * (1.0 - 1e-6)) on_saturated = true;
      }
      EXPECT_TRUE(at_cap || on_saturated)
          << "trial " << trial << " flow " << f << " rate " << res.rates[f]
          << " is neither capped nor bottlenecked";
    }
  }
}

// ---------------------------------------------------------- FlowNetwork

netsim::Message msg(std::uint32_t src, std::uint32_t dst,
                    std::uint64_t bytes, double t, std::int32_t job = -1) {
  return netsim::Message{src, dst, bytes, t, job};
}

TEST(FlowNetwork, DrainsEverythingAndConservesBytes) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kMinimal);
  net.add_messages({msg(0, 9, 64 * 1024, 0.0), msg(3, 40, 128 * 1024, 500.0),
                    msg(40, 3, 32 * 1024, 1000.0)});
  const auto run = net.run();

  EXPECT_GT(run.end_time, 0.0);
  EXPECT_DOUBLE_EQ(run.total_injected(), 64.0 * 1024 + 128 * 1024 + 32 * 1024);
  // Each message arrives as ceil(bytes / packet_size) packets.
  const std::uint64_t expect_pkts = (64 * 1024 + 2047) / 2048 +
                                    (128 * 1024 + 2047) / 2048 +
                                    (32 * 1024 + 2047) / 2048;
  EXPECT_EQ(run.total_packets_finished(), expect_pkts);
  // Latency can never undercut the fixed path latency.
  for (const auto& t : run.terminals) {
    if (t.packets_finished) {
      EXPECT_GT(t.avg_latency(), 0.0);
    }
  }
  EXPECT_GT(net.epochs(), 0u);
  EXPECT_EQ(net.bundles(), 3u);
}

TEST(FlowNetwork, EmptyRunIsValid) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kMinimal);
  const auto run = net.run();
  EXPECT_DOUBLE_EQ(run.total_injected(), 0.0);
  EXPECT_EQ(run.total_packets_finished(), 0u);
  EXPECT_EQ(run.local_links.size(),
            static_cast<std::size_t>(topo.num_local_links()));
  EXPECT_EQ(run.global_links.size(),
            static_cast<std::size_t>(topo.num_global_links()));
}

TEST(FlowNetwork, RunIsDeterministic) {
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  Rng rng(11, 3);
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto d = s;
    while (d == s) {
      d = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    ms.push_back(msg(s, d, 4096 + 512 * i, rng.next_double() * 1e5));
  }
  auto run_once = [&] {
    FlowNetwork net(topo, routing::Algo::kAdaptive, {}, 42);
    net.add_messages(ms);
    net.enable_sampling(1000.0);
    return net.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(metrics::run_content_uid(a), metrics::run_content_uid(b));
}

TEST(FlowNetwork, SampledFramesSumToCumulativeTotals) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kNonMinimal, {}, 7);
  std::vector<netsim::Message> ms;
  for (std::uint32_t t = 0; t < 32; ++t) {
    ms.push_back(msg(t, (t + 17) % topo.num_terminals(), 16 * 1024,
                     250.0 * t));
  }
  net.add_messages(ms);
  net.enable_sampling(500.0);
  const auto run = net.run();

  ASSERT_TRUE(run.has_time_series());
  ASSERT_GT(run.local_traffic_ts.frames(), 0u);
  // Frames are per-epoch deltas: summed over time they must reproduce the
  // cumulative per-class totals (float accumulation tolerance).
  auto series_total = [](const metrics::SampledSeries& s) {
    double sum = 0.0;
    for (std::size_t f = 0; f < s.frames(); ++f) sum += s.frame_total(f);
    return sum;
  };
  EXPECT_NEAR(series_total(run.local_traffic_ts), run.total_local_traffic(),
              run.total_local_traffic() * 1e-4 + 1.0);
  EXPECT_NEAR(series_total(run.global_traffic_ts), run.total_global_traffic(),
              run.total_global_traffic() * 1e-4 + 1.0);
  EXPECT_NEAR(series_total(run.term_traffic_ts), run.total_terminal_traffic(),
              run.total_terminal_traffic() * 1e-4 + 1.0);
  // The sampled span covers the whole run.
  EXPECT_GE(static_cast<double>(run.local_traffic_ts.frames()) *
                run.sample_dt,
            run.end_time - run.sample_dt);
}

TEST(FlowNetwork, ValidatesInputs) {
  const auto topo = topo::Dragonfly::canonical(2);
  FlowNetwork net(topo, routing::Algo::kMinimal);
  EXPECT_THROW(net.add_message(msg(0, 0, 100, 0.0)), Error);      // self-send
  EXPECT_THROW(net.add_message(msg(0, 100000, 100, 0.0)), Error); // range
  EXPECT_THROW(net.add_message(msg(0, 1, 0, 0.0)), Error);        // empty
  EXPECT_THROW(net.add_message(msg(0, 1, 100, -1.0)), Error);     // time
  EXPECT_THROW(net.enable_sampling(0.0), Error);
  EXPECT_THROW(net.set_epoch_dt(-1.0), Error);
  net.add_message(msg(0, 1, 100, 0.0));
  (void)net.run();
  EXPECT_THROW(net.run(), Error);                   // single-shot
  EXPECT_THROW(net.add_message(msg(1, 2, 1, 0.0)), Error);  // post-run
}

TEST(FlowNetwork, EpochLengthDoesNotChangeTotals) {
  const auto topo = topo::Dragonfly::canonical(2);
  std::vector<netsim::Message> ms;
  for (std::uint32_t t = 0; t < 16; ++t) {
    ms.push_back(msg(4 * t, (4 * t + 5) % topo.num_terminals(), 64 * 1024,
                     100.0 * t));
  }
  auto totals = [&](double epoch_dt) {
    FlowNetwork net(topo, routing::Algo::kMinimal, {}, 9);
    net.add_messages(ms);
    if (epoch_dt > 0) net.set_epoch_dt(epoch_dt);
    const auto run = net.run();
    return std::pair<double, double>(run.total_injected(),
                                     run.total_local_traffic() +
                                         run.total_global_traffic());
  };
  const auto coarse = totals(0.0);
  const auto fine = totals(50.0);
  // Finer epochs refine *when* bytes move, never *how many*: minimal
  // routing fixes the paths, so per-class traffic is epoch-invariant.
  EXPECT_DOUBLE_EQ(coarse.first, fine.first);
  EXPECT_NEAR(coarse.second, fine.second, coarse.second * 1e-9);
}

}  // namespace
}  // namespace dv::flow
