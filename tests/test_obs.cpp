// Observability layer: counters, gauges, phase timers, profile round-trip,
// and the guarantee that profiling never perturbs simulation results.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "app/runner.hpp"
#include "json/json.hpp"
#include "obs/profile.hpp"
#include "util/threadpool.hpp"

namespace dv {
namespace {

// The whole suite assumes the instrumented build; the OFF configuration is
// exercised by the CI matrix instead (everything compiles to no-ops there).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) GTEST_SKIP() << "built with DV_OBS_ENABLED=OFF";
    obs::reset();
  }
};

TEST_F(ObsTest, CounterAccumulatesAndSurvivesReset) {
  obs::Counter& c = obs::counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  obs::reset();
  EXPECT_EQ(c.value(), 0u);           // zeroed...
  c.add(7);
  EXPECT_EQ(obs::counter("test.counter").value(), 7u);  // ...same handle
}

TEST_F(ObsTest, GaugeSetAddMax) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.record_max(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.record_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST_F(ObsTest, SnapshotSkipsZeroesAndSorts) {
  obs::counter("b.used").add(2);
  obs::counter("a.used").add(1);
  obs::counter("z.unused");  // stays zero
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "a.used");
  EXPECT_EQ(s.counters[1].name, "b.used");
}

TEST_F(ObsTest, PhasesNestIntoSlashPaths) {
  {
    obs::ScopedPhase outer("outer");
    {
      obs::ScopedPhase inner("inner");
    }
    {
      obs::ScopedPhase inner("inner");
    }
  }
  {
    obs::ScopedPhase outer("outer");
  }
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.phases.size(), 2u);  // sorted: "outer", "outer/inner"
  EXPECT_EQ(s.phases[0].path, "outer");
  EXPECT_EQ(s.phases[0].count, 2u);
  EXPECT_EQ(s.phases[1].path, "outer/inner");
  EXPECT_EQ(s.phases[1].count, 2u);
  // The outer phase encloses the inner one, so its time dominates.
  EXPECT_GE(s.phases[0].seconds, s.phases[1].seconds);
}

TEST_F(ObsTest, PhaseStacksArePerThread) {
  obs::ScopedPhase outer("main_phase");
  std::thread t([] {
    obs::ScopedPhase p("worker_phase");  // must NOT nest under main_phase
  });
  t.join();
  const obs::Snapshot s = obs::snapshot();
  bool found = false;
  for (const auto& ph : s.phases) {
    if (ph.path == "worker_phase") found = true;
    EXPECT_EQ(ph.path.find("main_phase/worker_phase"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, CountersAreThreadSafeUnderThreadPool) {
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 10'000;
  obs::Counter& c = obs::counter("test.mt");
  ThreadPool pool(8);
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&c] {
      for (std::uint64_t n = 0; n < kPerTask; ++n) c.add();
    });
  }
  pool.wait_idle();
  EXPECT_EQ(c.value(), kTasks * kPerTask);
}

TEST_F(ObsTest, ProfileJsonRoundTrip) {
  obs::counter("rt.packets").add(123);
  obs::gauge("rt.rate").set(4.5e6);
  {
    obs::ScopedPhase p("rt_phase");
  }
  const obs::RunProfile a = obs::capture();
  const obs::RunProfile b = obs::RunProfile::from_json(
      json::parse(json::dump(a.to_json(), 2)));
  EXPECT_DOUBLE_EQ(b.wall_seconds, a.wall_seconds);
  ASSERT_EQ(b.counters.size(), a.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(b.counters[i].name, a.counters[i].name);
    EXPECT_EQ(b.counters[i].value, a.counters[i].value);
  }
  EXPECT_DOUBLE_EQ(b.gauge_value("rt.rate"), 4.5e6);
  ASSERT_EQ(b.phases.size(), a.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(b.phases[i].path, a.phases[i].path);
    EXPECT_DOUBLE_EQ(b.phases[i].seconds, a.phases[i].seconds);
    EXPECT_EQ(b.phases[i].count, a.phases[i].count);
  }
  EXPECT_EQ(b.counter_value("rt.packets"), 123u);
  EXPECT_EQ(b.counter_value("rt.missing"), 0u);
}

TEST_F(ObsTest, ProfileSchemaMismatchThrows) {
  EXPECT_THROW(obs::RunProfile::from_json(json::parse("{\"schema\":\"x\"}")),
               Error);
}

app::ExperimentConfig small_config() {
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"uniform_random", 24, placement::Policy::kContiguous, 1 << 20}};
  cfg.window = 5.0e4;
  cfg.sample_dt = 5'000.0;
  cfg.seed = 11;
  return cfg;
}

TEST_F(ObsTest, ExperimentProfileHasCountersAndPhases) {
  const auto result = app::run_experiment(small_config());
  const obs::RunProfile& p = result.profile;
  EXPECT_GT(p.counter_value("sim.events_processed"), 0u);
  EXPECT_GT(p.counter_value("net.packets_delivered"), 0u);
  EXPECT_EQ(p.counter_value("net.bytes_injected"),
            p.counter_value("net.bytes_delivered"));
  EXPECT_EQ(p.counter_value("net.route.minimal") +
                p.counter_value("net.route.nonminimal"),
            p.counter_value("net.packets_injected"));
  EXPECT_GE(p.counters.size(), 10u);
  // Top-level phases (setup / sim / collect) account for most of the wall.
  EXPECT_GT(p.wall_seconds, 0.0);
  EXPECT_GT(p.top_level_phase_seconds(), 0.0);
  EXPECT_LE(p.top_level_phase_seconds(), p.wall_seconds * 1.01);
  bool saw_sim = false;
  for (const auto& ph : p.phases) saw_sim |= ph.path == "sim";
  EXPECT_TRUE(saw_sim);
}

TEST_F(ObsTest, ProfilingDoesNotChangeRunMetrics) {
  // Same seeded experiment with the registry reset + captured vs. run
  // "cold": the serialized RunMetrics must be bit-identical. (capture()
  // itself is exercised by run_experiment in both cases; what differs is
  // the registry state around the run.)
  obs::reset();
  const auto with_profile = app::run_experiment(small_config());
  EXPECT_FALSE(with_profile.profile.empty());

  obs::counter("noise").add(999);  // dirty registry, no reset this time
  const auto again = app::run_experiment(small_config());

  EXPECT_EQ(json::dump(with_profile.run.to_json()),
            json::dump(again.run.to_json()));
}

}  // namespace
}  // namespace dv
