// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "pdes/engine.hpp"

namespace dv::pdes {
namespace {

/// Records every event it receives.
class Recorder : public LogicalProcess {
 public:
  struct Seen {
    SimTime time;
    std::uint32_t kind;
    std::uint64_t data0;
  };
  std::vector<Seen> seen;

  void on_event(Simulator& sim, const Event& ev) override {
    seen.push_back({sim.now(), ev.kind, ev.data0});
  }
};

/// Schedules a chain of follow-up events.
class Chainer : public LogicalProcess {
 public:
  int remaining = 5;
  std::vector<SimTime> times;

  void on_event(Simulator& sim, const Event& ev) override {
    times.push_back(sim.now());
    if (--remaining > 0) sim.schedule_in(2.0, ev.lp, ev.kind);
  }
};

TEST(Pdes, EventsDeliverInTimeOrder) {
  Simulator sim;
  Recorder rec;
  const LpId lp = sim.add_lp(&rec);
  sim.schedule(30.0, lp, 3);
  sim.schedule(10.0, lp, 1);
  sim.schedule(20.0, lp, 2);
  sim.run();
  ASSERT_EQ(rec.seen.size(), 3u);
  EXPECT_EQ(rec.seen[0].kind, 1u);
  EXPECT_EQ(rec.seen[1].kind, 2u);
  EXPECT_EQ(rec.seen[2].kind, 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Pdes, TiesBreakInScheduleOrder) {
  Simulator sim;
  Recorder rec;
  const LpId lp = sim.add_lp(&rec);
  for (std::uint64_t i = 0; i < 50; ++i) sim.schedule(5.0, lp, 0, i);
  sim.run();
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(rec.seen[i].data0, i);
}

TEST(Pdes, SelfSchedulingChain) {
  Simulator sim;
  Chainer c;
  const LpId lp = sim.add_lp(&c);
  sim.schedule(1.0, lp, 0);
  sim.run();
  ASSERT_EQ(c.times.size(), 5u);
  EXPECT_DOUBLE_EQ(c.times.back(), 9.0);
}

TEST(Pdes, RunUntilStopsAtBoundary) {
  Simulator sim;
  Recorder rec;
  const LpId lp = sim.add_lp(&rec);
  sim.schedule(1.0, lp, 0);
  sim.schedule(5.0, lp, 0);
  sim.schedule(9.0, lp, 0);
  sim.run_until(5.0);
  EXPECT_EQ(rec.seen.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(rec.seen.size(), 3u);
}

TEST(Pdes, SchedulingIntoThePastThrows) {
  Simulator sim;
  Recorder rec;
  const LpId lp = sim.add_lp(&rec);
  sim.schedule(10.0, lp, 0);
  sim.run();
  EXPECT_THROW(sim.schedule(5.0, lp, 0), Error);
  EXPECT_THROW(sim.schedule_in(-1.0, lp, 0), Error);
}

TEST(Pdes, UnknownLpThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(0.0, 7, 0), Error);
}

TEST(Pdes, EventBudgetTrips) {
  Simulator sim;
  class Forever : public LogicalProcess {
   public:
    void on_event(Simulator& sim, const Event& ev) override {
      sim.schedule_in(1.0, ev.lp, 0);
    }
  } lp;
  const LpId id = sim.add_lp(&lp);
  sim.set_event_budget(100);
  sim.schedule(0.0, id, 0);
  EXPECT_THROW(sim.run(), Error);
}

TEST(Pdes, MultipleLpsRouteCorrectly) {
  Simulator sim;
  Recorder a, b;
  const LpId la = sim.add_lp(&a);
  const LpId lb = sim.add_lp(&b);
  sim.schedule(1.0, la, 0);
  sim.schedule(2.0, lb, 0);
  sim.schedule(3.0, la, 0);
  sim.run();
  EXPECT_EQ(a.seen.size(), 2u);
  EXPECT_EQ(b.seen.size(), 1u);
}

}  // namespace
}  // namespace dv::pdes
