// Unit tests for the JSON module, including the relaxed script dialect the
// paper's Fig. 5 projection scripts use.
#include <gtest/gtest.h>

#include <cmath>

#include "json/json.hpp"

namespace dv::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse("-4e2").as_number(), -400.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  std::vector<std::string> keys;
  for (const auto& [k, val] : v.as_object()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Json, RelaxedDialect) {
  const Value v = parse("{ filter: { group_id : [0, 8] }, project : 'router', }");
  EXPECT_EQ(v.at("project").as_string(), "router");
  EXPECT_DOUBLE_EQ(v.at("filter").at("group_id").as_array()[1].as_number(), 8.0);
}

TEST(Json, Comments) {
  const Value v = parse("// leading\n{ a: 1 /* inline */, b: 2 }");
  EXPECT_DOUBLE_EQ(v.at("b").as_number(), 2.0);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").as_string(), "a\nb\t\"c\"\\");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
}

TEST(Json, RoundTripDump) {
  const std::string src =
      R"({"name":"x","vals":[1,2.5,true,null],"nested":{"k":"v"}})";
  const Value v = parse(src);
  EXPECT_EQ(parse(dump(v)), v);
  EXPECT_EQ(parse(dump(v, 2)), v);  // pretty-print round trip
}

TEST(Json, Errors) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,"), Error);
  EXPECT_THROW(parse("{a 1}"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("truex"), Error);
  EXPECT_THROW(parse("{} extra"), Error);
}

TEST(Json, ErrorHasLineInfo) {
  try {
    parse("{\n  a: 1,\n  b: }\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Json, ScriptCommaSeparatedObjects) {
  // The verbatim shape of the paper's Fig. 5 scripts.
  const Value v = parse_script(R"(
    { aggregate : "group_id", maxBins : 8,
      project : "global_link",
      vmap : { color : "sat_time", size : "traffic" },
      colors : ["white", "purple"]},
    { project : "router",
      aggregate : "router_rank",
      vmap : { color : "total_sat_time", },
      colors : ["white", "steelblue"],},
    { project : "terminal",
      aggregate : ["router_port", "workload"],
      vmap: { color :"workload", size : "avg_hops", },
      colors: ["green", "orange", "brown"],}
  )");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[0].at("project").as_string(), "global_link");
  EXPECT_EQ(v.as_array()[2].at("aggregate").as_array()[1].as_string(),
            "workload");
}

TEST(Json, ScriptSingleObject) {
  const Value v = parse_script("{a: 1}");
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.as_array().size(), 1u);
}

TEST(Json, AccessorsThrowOnWrongType) {
  const Value v = parse("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), Error);
  EXPECT_THROW(v.at("missing"), Error);
  EXPECT_THROW(v.at("a").as_string(), Error);
  EXPECT_DOUBLE_EQ(v.get_number("a", -1), 1.0);
  EXPECT_DOUBLE_EQ(v.get_number("b", -1), -1.0);
  EXPECT_EQ(v.get_string("a", "dflt"), "dflt");  // wrong type -> default
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(dump(Value(std::nan(""))), "null");
}

}  // namespace
}  // namespace dv::json
