// Unit tests for src/util: rng, stats, strings, colors, csv, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include <deque>

#include "util/color.hpp"
#include "util/csv.hpp"
#include "util/ring_queue.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/threadpool.hpp"

namespace dv {
namespace {

// ----------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDiverge) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(3);
  EXPECT_THROW(r.next_below(0), Error);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(4);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(5);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.next_double());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(6);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.next_exponential(3.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng r(8);
  std::vector<int> empty;
  EXPECT_THROW(r.pick(empty), Error);
}

// ----------------------------------------------------------------- stats

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng r(9);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_normal();
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), Error);
}

// ----------------------------------------------------------------- strings

TEST(Str, SplitJoinRoundTrip) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(1.2e9), "1.12 GB");
  EXPECT_EQ(human_bytes(512), "512.0 B");
}

TEST(Str, FmtDoubleTrimsZeros) {
  EXPECT_EQ(fmt_double(1.5), "1.5");
  EXPECT_EQ(fmt_double(2.0), "2");
  EXPECT_EQ(fmt_double(0.375, 2), "0.38");
  EXPECT_EQ(fmt_double(1.0 / 3.0, 3), "0.333");
}

// ----------------------------------------------------------------- colors

TEST(Color, ParseHexAndNames) {
  EXPECT_EQ(parse_color("#ff0000"), (Rgb{255, 0, 0}));
  EXPECT_EQ(parse_color("#f00"), (Rgb{255, 0, 0}));
  EXPECT_EQ(parse_color("steelblue"), (Rgb{70, 130, 180}));
  EXPECT_EQ(parse_color("  White "), (Rgb{255, 255, 255}));
  EXPECT_THROW(parse_color("notacolor"), Error);
  EXPECT_THROW(parse_color("#12345"), Error);
}

TEST(Color, HexRoundTrip) {
  const Rgb c{70, 130, 180, 255};
  EXPECT_EQ(parse_color(c.hex()), c);
}

TEST(Color, LerpEndpointsAndMidpoint) {
  const Rgb w{255, 255, 255}, b{0, 0, 0};
  EXPECT_EQ(lerp(w, b, 0.0), w);
  EXPECT_EQ(lerp(w, b, 1.0), b);
  const Rgb mid = lerp(w, b, 0.5);
  EXPECT_NEAR(mid.r, 128, 1);
}

TEST(ColorRamp, MultiStop) {
  const auto ramp =
      ColorRamp::from_names({"white", "purple"});
  EXPECT_EQ(ramp.at(0.0), parse_color("white"));
  EXPECT_EQ(ramp.at(1.0), parse_color("purple"));
  const auto ramp3 = ColorRamp::from_names({"green", "orange", "brown"});
  EXPECT_EQ(ramp3.at(0.5), parse_color("orange"));
}

TEST(ColorRamp, SingleStopIsConstant) {
  const ColorRamp ramp({Rgb{1, 2, 3}});
  EXPECT_EQ(ramp.at(0.0), ramp.at(0.7));
}

// ----------------------------------------------------------------- csv

TEST(Csv, RoundTripWithQuoting) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1", "plain"}, {"2", "with,comma"}, {"3", "with\"quote"}};
  const auto parsed = parse_csv(to_csv_string(t));
  EXPECT_EQ(parsed.header, t.header);
  EXPECT_EQ(parsed.rows, t.rows);
}

TEST(Csv, ColIndexThrowsOnMissing) {
  CsvTable t;
  t.header = {"x"};
  EXPECT_EQ(t.col_index("x"), 0u);
  EXPECT_THROW(t.col_index("y"), Error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a,b\n\"oops"), Error);
}

// ----------------------------------------------------------------- pool

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<int> n{0};
  for (int i = 0; i < 500; ++i) pool.submit([&] { n++; });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 500);
}

// ----------------------------------------------------------------- RingQueue

TEST(RingQueue, FifoBasics) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 20; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundSteadyState) {
  // Keep the size constant so head circles the storage block many times
  // without triggering growth.
  RingQueue<int> q;
  std::deque<int> ref;
  for (int i = 0; i < 6; ++i) {
    q.push_back(i);
    ref.push_back(i);
  }
  for (int i = 6; i < 1000; ++i) {
    q.push_back(i);
    ref.push_back(i);
    ASSERT_EQ(q.front(), ref.front());
    q.pop_front();
    ref.pop_front();
    ASSERT_EQ(q.size(), ref.size());
  }
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(q[i], ref[i]);
}

TEST(RingQueue, IndexedAccessMatchesInsertionOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  q.pop_front();
  q.pop_front();
  q.push_back(5);
  q.push_back(6);  // storage now wraps
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i], static_cast<int>(i) + 2);
  }
}

TEST(RingQueue, EraseAtMatchesDeque) {
  // Randomized differential test against std::deque, covering both the
  // shift-front and shift-back paths of erase_at.
  Rng rng(123);
  RingQueue<int> q;
  std::deque<int> ref;
  for (int step = 0; step < 5000; ++step) {
    const auto op = rng.next_below(4);
    if (op < 2 || ref.empty()) {
      const int v = static_cast<int>(rng.next_below(100000));
      q.push_back(v);
      ref.push_back(v);
    } else if (op == 2) {
      q.pop_front();
      ref.pop_front();
    } else {
      const auto i = static_cast<std::size_t>(rng.next_below(ref.size()));
      q.erase_at(i);
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(q.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(q.front(), ref.front());
    }
  }
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(q[i], ref[i]);
}

TEST(RingQueue, ClearResets) {
  RingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push_back(i);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(7);
  EXPECT_EQ(q.front(), 7);
}

}  // namespace
}  // namespace dv
