// Experiment-runner and CLI integration tests: the full pipeline from a
// declarative config (or argv) through simulation to files on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "app/cli.hpp"
#include "app/runner.hpp"
#include "core/projection.hpp"
#include "fault/fault.hpp"

namespace dv::app {
namespace {

namespace fs = std::filesystem;

std::string tmp(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

int cli(std::vector<std::string> args) {
  args.insert(args.begin(), "dragonviz");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

// ----------------------------------------------------------------- runner

TEST(Runner, SingleSyntheticJob) {
  ExperimentConfig cfg;
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 0}};
  cfg.window = 2.0e4;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.topo.num_terminals(), 72u);
  EXPECT_GT(result.events, 0u);
  EXPECT_GT(result.run.total_injected(), 0.0);
  EXPECT_EQ(result.run.workload, "uniform_random");
  EXPECT_EQ(result.run.placement, "contiguous");
  // All terminals belong to the single job.
  for (const auto& t : result.run.terminals) EXPECT_EQ(t.job, 0);
}

TEST(Runner, AppJobUsesTableIDefaults) {
  ExperimentConfig cfg;
  cfg.dragonfly_p = 4;  // 1,056 terminals, enough for 1,056 >= amg? no:
  // amg default is 1728 ranks, so give explicit ranks for the small net.
  cfg.jobs = {{"amg", 512, placement::Policy::kRandomGroup, 4u << 20}};
  cfg.window = 1.0e5;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.placement.terminals[0].size(), 512u);
  EXPECT_NEAR(result.run.total_injected(), 4.0 * (1 << 20), 0.2 * (1 << 20));
}

TEST(Runner, HybridLabel) {
  ExperimentConfig cfg;
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"uniform_random", 8, placement::Policy::kRandomRouter, 1 << 18},
              {"nearest_neighbor", 8, placement::Policy::kRandomGroup, 1 << 18}};
  EXPECT_EQ(cfg.placement_label(), "hybrid(random_router,random_group)");
  cfg.window = 2.0e4;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.run.placement, "hybrid(random_router,random_group)");
  EXPECT_EQ(result.run.workload, "uniform_random+nearest_neighbor");
  EXPECT_EQ(result.run.job_names.size(), 2u);
}

TEST(Runner, TrafficScaleScalesVolume) {
  ExperimentConfig cfg;
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 2 << 20}};
  cfg.window = 2.0e4;
  const auto full = run_experiment(cfg);
  cfg.traffic_scale = 0.5;
  const auto half = run_experiment(cfg);
  EXPECT_NEAR(half.run.total_injected(), full.run.total_injected() * 0.5,
              full.run.total_injected() * 0.15);
}

TEST(Runner, Validation) {
  ExperimentConfig cfg;
  EXPECT_THROW(run_experiment(cfg), Error);  // no jobs
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"bogus_workload", 8, placement::Policy::kContiguous, 1024}};
  EXPECT_THROW(run_experiment(cfg), Error);
  cfg.jobs = {{"uniform_random", 9999, placement::Policy::kContiguous, 1024}};
  EXPECT_THROW(run_experiment(cfg), Error);  // does not fit
  cfg.jobs = {{"uniform_random", 8, placement::Policy::kContiguous, 1024}};
  cfg.traffic_scale = 0.0;
  EXPECT_THROW(run_experiment(cfg), Error);
}

TEST(Runner, ZeroLengthWindowRejected) {
  // Regression: window = 0 used to slip through and inject every message at
  // t = 0; it must be rejected up front with an explanation.
  ExperimentConfig cfg;
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"uniform_random", 8, placement::Policy::kContiguous, 1024}};
  cfg.window = 0.0;
  try {
    (void)run_experiment(cfg);
    FAIL() << "zero-length window was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("window must be positive"),
              std::string::npos)
        << e.what();
  }
  cfg.window = -5.0;
  EXPECT_THROW(run_experiment(cfg), Error);
}

TEST(Runner, FaultPlanFlowsThroughExperiment) {
  ExperimentConfig cfg;
  cfg.dragonfly_p = 2;
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 0}};
  cfg.window = 2.0e4;
  cfg.faults = fault::FaultPlan::parse("router:g1.r0@0:15000");
  const auto result = run_experiment(cfg);
  ASSERT_EQ(result.run.router_downtime.size(),
            result.topo.num_routers());
  EXPECT_DOUBLE_EQ(result.run.router_downtime[result.topo.router_id(1, 0)],
                   15000.0);
}

// ----------------------------------------------------------------- CLI

TEST(Cli, SimRenderExportInfoPipeline) {
  const std::string run_path = tmp("dv_cli_run.json");
  const std::string spec_path = tmp("dv_cli_spec.json");
  const std::string svg_path = tmp("dv_cli_view.svg");
  const std::string csv_path = tmp("dv_cli_terms.csv");

  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                 "20000", "--sample-dt", "2000", "--out", run_path}),
            0);
  ASSERT_TRUE(fs::exists(run_path));

  {
    std::ofstream os(spec_path);
    os << R"({ project: "global_link", aggregate: "router_rank",
               vmap: { color: "sat_time", size: "traffic" } })";
  }
  EXPECT_EQ(cli({"render", "--run", run_path, "--spec", spec_path, "--out",
                 svg_path}),
            0);
  ASSERT_TRUE(fs::exists(svg_path));
  EXPECT_GT(fs::file_size(svg_path), 500u);

  EXPECT_EQ(cli({"export", "--run", run_path, "--entity", "terminals",
                 "--out", csv_path}),
            0);
  ASSERT_TRUE(fs::exists(csv_path));

  EXPECT_EQ(cli({"info", "--run", run_path}), 0);

  const std::string ui_path = tmp("dv_cli_ui.svg");
  EXPECT_EQ(cli({"session", "--run", run_path, "--spec", spec_path, "--out",
                 ui_path, "--t0", "0", "--t1", "10000"}),
            0);
  ASSERT_TRUE(fs::exists(ui_path));

  for (const auto& p : {run_path, spec_path, svg_path, csv_path, ui_path}) {
    std::remove(p.c_str());
  }
}

TEST(Cli, CompareProducesSharedScaleSvg) {
  const std::string a = tmp("dv_cli_a.json"), b = tmp("dv_cli_b.json");
  const std::string spec_path = tmp("dv_cli_cmp_spec.json");
  const std::string out = tmp("dv_cli_cmp.svg");
  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--routing",
                 "minimal", "--window", "20000", "--out", a}),
            0);
  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--routing",
                 "adaptive", "--window", "20000", "--out", b}),
            0);
  {
    std::ofstream os(spec_path);
    os << R"({ project: "terminal", aggregate: "workload",
               vmap: { color: "avg_latency", size: "avg_hops" } })";
  }
  EXPECT_EQ(cli({"compare", "--run", a, "--run", b, "--spec", spec_path,
                 "--out", out}),
            0);
  ASSERT_TRUE(fs::exists(out));
  for (const auto& p : {a, b, spec_path, out}) std::remove(p.c_str());
}

TEST(Cli, JobSpecParsing) {
  const std::string run_path = tmp("dv_cli_jobspec.json");
  // workload:ranks:policy:bytes form.
  EXPECT_EQ(cli({"sim", "--p", "2", "--job",
                 "nearest_neighbor:12:random_router:262144", "--window",
                 "20000", "--out", run_path}),
            0);
  const auto run = metrics::RunMetrics::load(run_path);
  EXPECT_EQ(run.placement, "random_router");
  int placed = 0;
  for (const auto& t : run.terminals) placed += (t.job == 0);
  EXPECT_EQ(placed, 12);
  std::remove(run_path.c_str());
}

TEST(Cli, FaultFlagsAndZeroWindow) {
  const std::string run_path = tmp("dv_cli_fault_run.json");
  const std::string plan_path = tmp("dv_cli_fault_plan.txt");
  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                 "20000", "--fault", "link:g0->g1@2000:6000", "--fault",
                 "router:g2.r1@1000:5000", "--out", run_path}),
            0);
  {
    const auto run = metrics::RunMetrics::load(run_path);
    ASSERT_FALSE(run.router_downtime.empty());
    EXPECT_EQ(cli({"info", "--run", run_path}), 0);
  }
  // Same plan via a --faults file; inline --fault specs append to it.
  {
    std::ofstream os(plan_path);
    os << "# test plan\nlink:g0->g1@2000:6000\n";
  }
  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                 "20000", "--faults", plan_path, "--fault",
                 "router:g2.r1@1000:5000", "--out", run_path}),
            0);
  EXPECT_THROW(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                    "20000", "--fault", "bogus", "--out", run_path}),
               Error);
  // Zero-length injection window is rejected at the CLI boundary too.
  EXPECT_THROW(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                    "0", "--out", run_path}),
               Error);
  std::remove(run_path.c_str());
  std::remove(plan_path.c_str());
}

TEST(Cli, TraceRecordReplayPipeline) {
  const std::string trace_path = tmp("dv_cli_trace.dvtr");
  const std::string run_path = tmp("dv_cli_trace_run.json");
  EXPECT_EQ(cli({"trace-record", "--workload", "amg", "--ranks", "64",
                 "--bytes", "2097152", "--window", "50000", "--out",
                 trace_path}),
            0);
  ASSERT_TRUE(fs::exists(trace_path));
  EXPECT_EQ(cli({"trace-replay", "--trace", trace_path, "--p", "2",
                 "--placement", "random_router", "--routing", "adaptive",
                 "--sample-dt", "5000", "--out", run_path}),
            0);
  const auto run = metrics::RunMetrics::load(run_path);
  EXPECT_EQ(run.workload, "amg");
  EXPECT_EQ(run.placement, "random_router");
  EXPECT_TRUE(run.has_time_series());
  EXPECT_GT(run.total_injected(), 1.5e6);
  std::remove(trace_path.c_str());
  std::remove(run_path.c_str());
}

TEST(Cli, StoreAndFocusWorkflow) {
  const std::string run_path = tmp("dv_cli_store_run.json");
  const std::string spec_path = tmp("dv_cli_store_spec.json");
  const std::string svg_path = tmp("dv_cli_focus.svg");
  const std::string store_dir = tmp("dv_cli_store_dir");
  fs::remove_all(store_dir);

  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                 "20000", "--out", run_path}),
            0);
  EXPECT_EQ(cli({"store", "--dir", store_dir, "--action", "add", "--run",
                 run_path, "--name", "probe"}),
            0);
  EXPECT_EQ(cli({"store", "--dir", store_dir}), 0);  // list
  ASSERT_TRUE(fs::exists(fs::path(store_dir) / "probe.json"));

  {
    std::ofstream os(spec_path);
    os << R"({ project: "global_link", aggregate: "group_id", maxBins: 4,
               vmap: { color: "sat_time", size: "traffic" } })";
  }
  EXPECT_EQ(cli({"render", "--run", run_path, "--spec", spec_path,
                 "--focus", "0:0", "--out", svg_path}),
            0);
  ASSERT_TRUE(fs::exists(svg_path));

  EXPECT_EQ(cli({"store", "--dir", store_dir, "--action", "remove",
                 "--name", "probe"}),
            0);
  EXPECT_THROW(cli({"store", "--dir", store_dir, "--action", "bogus"}),
               Error);
  fs::remove_all(store_dir);
  for (const auto& p : {run_path, spec_path, svg_path}) std::remove(p.c_str());
}

TEST(Cli, ReportSingleAndComparison) {
  const std::string a = tmp("dv_cli_rep_a.json"), b = tmp("dv_cli_rep_b.json");
  const std::string spec_path = tmp("dv_cli_rep_spec.json");
  const std::string out = tmp("dv_cli_report.html");
  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--window",
                 "20000", "--out", a}),
            0);
  EXPECT_EQ(cli({"sim", "--p", "2", "--job", "uniform_random", "--routing",
                 "minimal", "--window", "20000", "--out", b}),
            0);
  {
    std::ofstream os(spec_path);
    os << R"({ project: "global_link", aggregate: "router_rank",
               vmap: { color: "sat_time", size: "traffic" } })";
  }
  EXPECT_EQ(cli({"report", "--run", a, "--spec", spec_path, "--out", out,
                 "--title", "single run"}),
            0);
  EXPECT_GT(fs::file_size(out), 2000u);
  EXPECT_EQ(cli({"report", "--run", a, "--run", b, "--spec", spec_path,
                 "--out", out}),
            0);
  EXPECT_GT(fs::file_size(out), 2000u);
  for (const auto& p : {a, b, spec_path, out}) std::remove(p.c_str());
}

TEST(Cli, TraceRecordValidation) {
  EXPECT_THROW(cli({"trace-record", "--workload", "amg", "--out",
                    tmp("z.dvtr")}),
               Error);  // missing ranks/bytes
  EXPECT_THROW(cli({"trace-replay", "--trace", "/nonexistent.dvtr", "--out",
                    tmp("z.json")}),
               Error);
}

TEST(Cli, ErrorsAreReported) {
  EXPECT_THROW(cli({"frobnicate"}), Error);
  EXPECT_THROW(cli({"sim", "--p", "2", "--out", tmp("x.json")}), Error);
  EXPECT_THROW(cli({"sim", "--p"}), Error);             // missing value
  EXPECT_THROW(cli({"sim", "p", "2"}), Error);          // not an option
  EXPECT_THROW(cli({"render", "--run", "/nonexistent.json", "--spec",
                    "/nonexistent.json", "--out", tmp("y.svg")}),
               Error);
  EXPECT_EQ(cli({"help"}), 0);
}

}  // namespace
}  // namespace dv::app
