// DataTable / DataSet tests: entity tables (Fig. 2a schema), derived
// columns, time-range slicing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/datatable.hpp"
#include "helpers.hpp"

namespace dv::core {
namespace {

TEST(DataTable, ColumnsAndExtent) {
  DataTable t;
  t.add_column("a", {1.0, 5.0, 3.0});
  t.add_column("b", {2.0, 2.0, 2.0});
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_TRUE(t.has_column("a"));
  EXPECT_FALSE(t.has_column("c"));
  EXPECT_DOUBLE_EQ(t.at("a", 1), 5.0);
  const auto [lo, hi] = t.extent("a");
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 5.0);
  const auto [slo, shi] = t.extent("a", {0u, 2u});
  EXPECT_DOUBLE_EQ(slo, 1.0);
  EXPECT_DOUBLE_EQ(shi, 3.0);
}

TEST(DataTable, Errors) {
  DataTable t;
  t.add_column("a", {1.0});
  EXPECT_THROW(t.add_column("a", {2.0}), Error);       // duplicate
  EXPECT_THROW(t.add_column("b", {1.0, 2.0}), Error);  // length mismatch
  EXPECT_THROW(t.column("zz"), Error);
  EXPECT_THROW(t.at("a", 5), Error);
}

TEST(DataSet, EntityTablesHaveFig2aSchema) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);

  const DataTable& routers = data.table(Entity::kRouter);
  EXPECT_EQ(routers.rows(), mini.topo.num_routers());
  for (const char* col : {"router", "group_id", "router_rank",
                          "global_traffic", "global_sat_time",
                          "local_traffic", "local_sat_time", "job"}) {
    EXPECT_TRUE(routers.has_column(col)) << col;
  }

  const DataTable& links = data.table(Entity::kLocalLink);
  EXPECT_EQ(links.rows(), mini.topo.num_local_links());
  for (const char* col : {"src_router", "src_port", "dst_router", "dst_port",
                          "group_id", "router_rank", "router_port",
                          "dst_group", "dst_rank", "src_job", "dst_job",
                          "traffic", "sat_time"}) {
    EXPECT_TRUE(links.has_column(col)) << col;
  }

  const DataTable& terms = data.table(Entity::kTerminal);
  EXPECT_EQ(terms.rows(), mini.topo.num_terminals());
  for (const char* col : {"terminal", "router", "group_id", "router_rank",
                          "router_port", "data_size", "sat_time",
                          "packets_finished", "avg_latency", "avg_hops",
                          "workload"}) {
    EXPECT_TRUE(terms.has_column(col)) << col;
  }
}

TEST(DataSet, DerivedColumnsAreConsistent) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const DataTable& terms = data.table(Entity::kTerminal);
  const auto& job = terms.column("workload");
  // Job column matches the placement.
  for (std::uint32_t t = 0; t < mini.topo.num_terminals(); ++t) {
    EXPECT_DOUBLE_EQ(job[t], mini.placement.job_of[t]);
  }
  // Link dst_group column matches topology.
  const DataTable& links = data.table(Entity::kGlobalLink);
  const auto& dst_router = links.column("dst_router");
  const auto& dst_group = links.column("dst_group");
  for (std::uint32_t r = 0; r < links.rows(); ++r) {
    EXPECT_DOUBLE_EQ(dst_group[r],
                     std::floor(dst_router[r] / mini.topo.routers_per_group()));
  }
}

TEST(DataSet, RouterJobIsMajorityOfTerminals) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto& rjob = data.table(Entity::kRouter).column("job");
  for (std::uint32_t r = 0; r < mini.topo.num_routers(); ++r) {
    // Contiguous job 0 occupies routers 0..2 (12 ranks / 4 per router).
    if (r < 3) {
      EXPECT_DOUBLE_EQ(rjob[r], 0.0);
    }
  }
}

TEST(DataSet, SliceTimeConservesTotals) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const double end = mini.run.end_time;
  const DataSet whole = data.slice_time(0.0, end + 1000.0);
  const auto& full = data.table(Entity::kLocalLink).column("traffic");
  const auto& sliced = whole.table(Entity::kLocalLink).column("traffic");
  double sum_full = 0, sum_sliced = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    sum_full += full[i];
    sum_sliced += sliced[i];
  }
  EXPECT_NEAR(sum_sliced, sum_full, sum_full * 1e-3);

  // Two halves sum to the whole.
  const DataSet first = data.slice_time(0.0, end / 2);
  const DataSet second = data.slice_time(end / 2, end + 1000.0);
  const auto& t1 = first.table(Entity::kTerminal).column("data_size");
  const auto& t2 = second.table(Entity::kTerminal).column("data_size");
  const auto& tf = data.table(Entity::kTerminal).column("data_size");
  for (std::size_t i = 0; i < tf.size(); ++i) {
    EXPECT_NEAR(t1[i] + t2[i], tf[i], std::max(1.0, tf[i]) * 1e-3);
  }
}

TEST(DataSet, SliceTimeRequiresSeries) {
  auto mini = dv::testing::make_mini_run();
  mini.run.sample_dt = 0.0;  // strip the series
  const DataSet data(mini.run);
  EXPECT_THROW(data.slice_time(0.0, 100.0), Error);
}

TEST(DataSet, EntityStringRoundTrip) {
  for (Entity e : {Entity::kRouter, Entity::kLocalLink, Entity::kGlobalLink,
                   Entity::kTerminal}) {
    EXPECT_EQ(entity_from_string(to_string(e)), e);
  }
  EXPECT_EQ(entity_from_string("terminals"), Entity::kTerminal);
  EXPECT_THROW(entity_from_string("nope"), Error);
}

}  // namespace
}  // namespace dv::core
