// Detail/timeline/linked-session tests (the Fig. 6 interactions).
#include <gtest/gtest.h>

#include <set>

#include "core/views.hpp"
#include "helpers.hpp"

namespace dv::core {
namespace {

ProjectionSpec simple_spec() {
  return SpecBuilder()
      .level(Entity::kGlobalLink)
      .aggregate({"router_rank"})
      .color("sat_time")
      .size("traffic")
      .level(Entity::kTerminal)
      .aggregate({"router_rank"})
      .color("sat_time")
      .ribbons(Entity::kLocalLink, "router_rank")
      .build();
}

TEST(DetailView, BrushFiltersTerminals) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  DetailView dv(data);
  const auto all = dv.selected_terminals();
  EXPECT_EQ(all.size(), mini.topo.num_terminals());

  // Brush out idle terminals (workload >= 0).
  dv.brush("workload", 0.0, 10.0);
  const auto active = dv.selected_terminals();
  EXPECT_EQ(active.size(), 24u);  // 2 jobs x 12 ranks

  // Second brush composes.
  dv.brush("data_size", 1.0, 1e18);
  EXPECT_LE(dv.selected_terminals().size(), active.size());

  // Re-brushing an axis replaces the range.
  dv.brush("workload", 1.0, 1.0);
  EXPECT_LE(dv.selected_terminals().size(), 12u);

  dv.clear_brushes();
  EXPECT_EQ(dv.selected_terminals().size(), mini.topo.num_terminals());
}

TEST(DetailView, BrushValidation) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  DetailView dv(data);
  EXPECT_THROW(dv.brush("no_such_axis", 0, 1), Error);
  EXPECT_THROW(dv.brush("workload", 5, 1), Error);
  EXPECT_THROW(DetailView(data, {"bogus_column"}), Error);
}

TEST(DetailView, AssociatedLinksTouchSelectedRouters) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  DetailView dv(data);
  // Select the terminals of router 0 explicitly.
  std::vector<std::uint32_t> rows;
  for (std::uint32_t t = 0; t < mini.topo.terminals_per_router(); ++t) {
    rows.push_back(t);
  }
  dv.select_terminals(rows);
  const auto links = dv.associated_links(Entity::kLocalLink);
  ASSERT_FALSE(links.empty());
  const auto& table = data.table(Entity::kLocalLink);
  const auto& src = table.column("src_router");
  const auto& dst = table.column("dst_router");
  for (std::uint32_t l : links) {
    EXPECT_TRUE(src[l] == 0.0 || dst[l] == 0.0);
  }
  // Every local link of router 0 is included (a-1 out + a-1 in).
  EXPECT_EQ(links.size(), 2u * (mini.topo.routers_per_group() - 1));
  EXPECT_THROW(dv.associated_links(Entity::kRouter), Error);
}

TEST(DetailView, RendersSvg) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  DetailView dv(data);
  dv.brush("avg_latency", 0.0, 1e18);
  const auto svg = dv.to_svg();
  EXPECT_NE(svg.find("Global links"), std::string::npos);
  EXPECT_NE(svg.find("Terminals"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(TimelineView, SeriesTotalsMatchRun) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  TimelineView tv(data);
  EXPECT_GT(tv.frames(), 2u);
  const auto s = tv.series("local_traffic");
  double sum = 0;
  for (double v : s) sum += v;
  EXPECT_NEAR(sum, mini.run.total_local_traffic(),
              mini.run.total_local_traffic() * 1e-3);
  EXPECT_THROW(tv.series("bogus"), Error);
}

TEST(TimelineView, SliceRespectsSelection) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  TimelineView tv(data);
  EXPECT_FALSE(tv.has_selection());
  tv.select_range(0.0, mini.run.end_time / 4);
  ASSERT_TRUE(tv.has_selection());
  const DataSet sliced = tv.slice();
  const auto& full = data.table(Entity::kTerminal).column("data_size");
  const auto& part = sliced.table(Entity::kTerminal).column("data_size");
  double sum_full = 0, sum_part = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    sum_full += full[i];
    sum_part += part[i];
  }
  EXPECT_LT(sum_part, sum_full);
  EXPECT_GT(sum_part, 0.0);
  tv.clear_range();
  EXPECT_FALSE(tv.has_selection());
  EXPECT_THROW(tv.select_range(5.0, 5.0), Error);
}

TEST(TimelineView, RequiresSampledRun) {
  auto mini = dv::testing::make_mini_run();
  mini.run.sample_dt = 0.0;
  const DataSet data(mini.run);
  EXPECT_THROW(TimelineView{data}, Error);
}

TEST(RenderGeometry, BarChartExtentTracksSizeChannel) {
  // The SVG is generated from size_t_: items with larger normalized size
  // must produce longer radial bars. We verify on the computed model (the
  // single source of truth for the renderer).
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto spec = SpecBuilder()
                        .level(Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .no_ribbons()
                        .build();
  const ProjectionView view(data, spec);
  const auto& items = view.rings()[0].items;
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (items[i].size_value < items[j].size_value) {
        EXPECT_LE(items[i].size_t_, items[j].size_t_);
      }
    }
  }
}

TEST(RenderGeometry, Heatmap2DCoversDistinctGridCells) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto spec = SpecBuilder()
                        .level(Entity::kLocalLink)
                        .aggregate({"router_rank", "router_port"})
                        .color("traffic")
                        .x("router_rank")
                        .y("router_port")
                        .no_ribbons()
                        .build();
  const ProjectionView view(data, spec);
  ASSERT_EQ(view.rings()[0].type, PlotType::kHeatmap2D);
  // Each (rank, port) pair occupies a unique grid cell.
  std::set<std::pair<double, double>> cells;
  for (const auto& it : view.rings()[0].items) {
    EXPECT_TRUE(cells.insert({it.x_value, it.y_value}).second);
  }
  // a ranks x (a-1) local ports.
  EXPECT_EQ(cells.size(),
            static_cast<std::size_t>(mini.topo.routers_per_group()) *
                (mini.topo.routers_per_group() - 1));
}

TEST(Session, TimeRangeReaggregatesProjection) {
  const auto mini = dv::testing::make_mini_run();
  AnalysisSession session(DataSet(mini.run), simple_spec());
  // Whole-run totals on ring 0.
  double total_before = 0;
  for (const auto& it : session.projection().rings()[0].items) {
    total_before += it.size_value;
  }
  session.select_time_range(0.0, mini.run.end_time / 4);
  double total_after = 0;
  for (const auto& it : session.projection().rings()[0].items) {
    total_after += it.size_value;
  }
  EXPECT_LT(total_after, total_before);
  session.clear_time_range();
  double total_restored = 0;
  for (const auto& it : session.projection().rings()[0].items) {
    total_restored += it.size_value;
  }
  EXPECT_NEAR(total_restored, total_before, total_before * 1e-3);
}

TEST(Session, BrushFiltersProjectionTerminals) {
  const auto mini = dv::testing::make_mini_run();
  AnalysisSession session(DataSet(mini.run), simple_spec());
  std::size_t terms_before = 0;
  for (const auto& it : session.projection().rings()[1].items) {
    terms_before += it.source_rows.size();
  }
  EXPECT_EQ(terms_before, mini.topo.num_terminals());
  session.brush("workload", 0.0, 10.0);  // only placed terminals
  std::size_t terms_after = 0;
  for (const auto& it : session.projection().rings()[1].items) {
    terms_after += it.source_rows.size();
  }
  EXPECT_EQ(terms_after, 24u);
}

TEST(Session, SelectAggregateHighlightsAssociatedLinks) {
  const auto mini = dv::testing::make_mini_run();
  AnalysisSession session(DataSet(mini.run), simple_spec());
  session.select_aggregate(1, 0);  // terminals of rank 0
  std::size_t highlighted_ribbons = 0;
  for (const auto& rb : session.projection().ribbons()) {
    highlighted_ribbons += rb.highlighted;
  }
  EXPECT_GT(highlighted_ribbons, 0u)
      << "selecting terminals should highlight their local-link ribbons";
  std::size_t highlighted_terms = 0;
  for (const auto& it : session.projection().rings()[1].items) {
    highlighted_terms += it.highlighted;
  }
  EXPECT_EQ(highlighted_terms, 1u);
}

TEST(Session, FullUiSvg) {
  const auto mini = dv::testing::make_mini_run();
  AnalysisSession session(DataSet(mini.run), simple_spec());
  session.select_time_range(0.0, mini.run.end_time / 2);
  const auto svg = session.to_svg(1000, 700);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("dragonviz"), std::string::npos);
  EXPECT_NE(svg.find("Network link traffic"), std::string::npos);
}

}  // namespace
}  // namespace dv::core
