// Differential property tests for the bounded-horizon bucket scheduler.
//
// The BucketSched contract is purely about *order*: whatever mix of
// bucketed and heap-backed storage events land in, pops must come out in
// strict (time, pri, seq) order — identical to a std::priority_queue
// reference. The generators below stress the structural edge cases:
// sub-width and zero delays into the active bucket, pushes behind the
// drain cursor after a heap re-anchor, far-future events beyond the
// horizon, and deliberate (time, pri, seq) tie collisions.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "pdes/bucket_sched.hpp"
#include "pdes/engine.hpp"
#include "util/rng.hpp"

namespace dv::pdes {
namespace {

bool ref_after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  if (a.pri != b.pri) return a.pri > b.pri;
  return a.seq > b.seq;
}

/// Min-queue on the engine's full (time, pri, seq) order.
using RefQueue =
    std::priority_queue<Event, std::vector<Event>, decltype(&ref_after)>;

/// Drives a BucketSched and the reference queue through the same random
/// push/pop interleaving and asserts every popped event matches.
void run_differential(double width, std::size_t buckets, std::uint64_t seed,
                      int ops, double max_delay, std::uint64_t pri_range,
                      double zero_delay_frac) {
  BucketSched<Event> sched;
  if (width > 0.0) sched.configure(width, buckets);
  RefQueue ref(ref_after);
  Rng rng(seed, 0);

  double now = 0.0;
  std::uint64_t seq = 0;
  for (int op = 0; op < ops; ++op) {
    const bool push = ref.empty() || rng.next_double() < 0.55;
    if (push) {
      // Delays from now: a slug of zero/sub-width delays plus a heavy tail
      // that regularly clears the bucket horizon.
      double delay = rng.next_double() < zero_delay_frac
                         ? 0.0
                         : rng.next_double() * max_delay;
      Event ev{.time = now + delay,
               .pri = rng.next_below(pri_range),
               .seq = seq++,
               .lp = 0,
               .kind = static_cast<std::uint32_t>(op)};
      sched.push(ev);
      ref.push(ev);
    } else {
      const Event want = ref.top();
      ref.pop();
      ASSERT_FALSE(sched.empty());
      const Event& t = sched.top();
      EXPECT_EQ(t.time, want.time);
      EXPECT_EQ(t.pri, want.pri);
      EXPECT_EQ(t.seq, want.seq);
      Event got;
      sched.pop_into(got);
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(got.pri, want.pri);
      ASSERT_EQ(got.seq, want.seq);
      EXPECT_EQ(got.kind, want.kind);
      now = got.time;  // pops advance the clock like an engine loop does
    }
  }
  // Drain whatever is left and compare the tails too.
  while (!ref.empty()) {
    const Event want = ref.top();
    ref.pop();
    Event got;
    sched.pop_into(got);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.time, want.time);
  }
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.size(), 0u);
}

TEST(PdesSched, MatchesReferenceNearFutureOnly) {
  // Delays well inside the horizon: almost everything bucketed.
  run_differential(/*width=*/1.0, /*buckets=*/64, /*seed=*/1, /*ops=*/20000,
                   /*max_delay=*/20.0, /*pri_range=*/1000,
                   /*zero_delay_frac=*/0.1);
}

TEST(PdesSched, MatchesReferenceAcrossHorizonSpills) {
  // Heavy tail: many pushes land beyond buckets*width and fall back to the
  // heap, then re-enter the window as the clock advances (re-anchor path).
  run_differential(/*width=*/1.0, /*buckets=*/8, /*seed=*/2, /*ops=*/20000,
                   /*max_delay=*/100.0, /*pri_range=*/1000,
                   /*zero_delay_frac=*/0.1);
}

TEST(PdesSched, MatchesReferenceWithTieCollisions) {
  // Tiny pri range + many zero delays: constant (time, pri) collisions so
  // the seq tie-breaker carries the order.
  run_differential(/*width=*/2.0, /*buckets=*/16, /*seed=*/3, /*ops=*/20000,
                   /*max_delay=*/6.0, /*pri_range=*/2,
                   /*zero_delay_frac=*/0.5);
}

TEST(PdesSched, MatchesReferenceSubWidthDelays) {
  // Every delay is below the bucket width: the ordered-insert slow path
  // into the sorted active bucket runs constantly.
  run_differential(/*width=*/10.0, /*buckets=*/8, /*seed=*/4, /*ops=*/10000,
                   /*max_delay=*/5.0, /*pri_range=*/100,
                   /*zero_delay_frac=*/0.3);
}

TEST(PdesSched, MatchesReferenceUnbucketed) {
  // width = 0: pure fallback heap, same contract.
  run_differential(/*width=*/0.0, /*buckets=*/0, /*seed=*/5, /*ops=*/10000,
                   /*max_delay=*/50.0, /*pri_range=*/100,
                   /*zero_delay_frac=*/0.2);
}

TEST(PdesSched, ExactTiesPopInScheduleOrder) {
  BucketSched<Event> sched;
  sched.configure(1.0, 16);
  for (std::uint64_t s = 0; s < 10; ++s) {
    sched.push(Event{.time = 3.5, .pri = 7, .seq = 9 - s});
  }
  for (std::uint64_t s = 0; s < 10; ++s) {
    Event ev;
    sched.pop_into(ev);
    EXPECT_EQ(ev.seq, s);
  }
}

TEST(PdesSched, CountersAttributeBucketAndHeapPushes) {
  BucketSched<Event> sched;
  sched.configure(1.0, 4);  // horizon = [0, 4)
  sched.push(Event{.time = 1.0, .seq = 0});
  sched.push(Event{.time = 3.9, .seq = 1});
  sched.push(Event{.time = 4.1, .seq = 2});  // beyond the horizon
  EXPECT_EQ(sched.pushes_bucketed(), 2u);
  EXPECT_EQ(sched.pushes_heap(), 1u);
  Event ev;
  sched.pop_into(ev);
  EXPECT_EQ(ev.seq, 0u);
}

TEST(PdesSched, ConfigureRequiresEmptyScheduler) {
  BucketSched<Event> sched;
  sched.push(Event{.time = 1.0});
  EXPECT_THROW(sched.configure(1.0), Error);
}

/// The same model run with and without bucketing must produce the same
/// event trace — set_bucket_granularity is a pure scheduling-cost knob.
class TraceLp : public LogicalProcess {
 public:
  explicit TraceLp(std::uint64_t seed) : rng_(seed, 7) {}
  std::vector<SimTime> trace;

  void on_event(Simulator& sim, const Event& ev) override {
    trace.push_back(sim.now());
    // Mixed delays — sub-width, in-window and far-future — capped by a
    // spawn budget so the run terminates.
    if (spawned_ < 3000) {
      ++spawned_;
      sim.schedule_in(rng_.next_double() * 30.0, ev.lp, ev.kind);
    }
    if (spawned_ < 3000) {
      ++spawned_;
      sim.schedule_in(0.25, ev.lp, ev.kind);
    }
  }

 private:
  Rng rng_;
  int spawned_ = 0;
};

TEST(PdesSched, BucketedSimulatorMatchesUnbucketed) {
  std::vector<SimTime> traces[2];
  for (int pass = 0; pass < 2; ++pass) {
    Simulator sim;
    if (pass == 1) sim.set_bucket_granularity(2.0, 8);
    TraceLp lp(99);
    const LpId id = sim.add_lp(&lp);
    for (std::uint32_t i = 0; i < 8; ++i) sim.schedule(0.5 * i, id, 0);
    sim.run();
    traces[pass] = lp.trace;
  }
  ASSERT_EQ(traces[0].size(), traces[1].size());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(PdesSched, EventHeapPopIntoMatchesPop) {
  EventHeap<Event> heap;
  Rng rng(11, 0);
  for (std::uint64_t s = 0; s < 200; ++s) {
    heap.push(Event{.time = rng.next_double() * 50.0,
                    .pri = rng.next_below(4), .seq = s});
  }
  Event prev{};
  bool first = true;
  while (!heap.empty()) {
    Event ev;
    heap.pop_into(ev);
    if (!first) {
      const bool ordered =
          prev.time < ev.time ||
          (prev.time == ev.time &&
           (prev.pri < ev.pri || (prev.pri == ev.pri && prev.seq < ev.seq)));
      EXPECT_TRUE(ordered);
    }
    prev = ev;
    first = false;
  }
}

}  // namespace
}  // namespace dv::pdes
