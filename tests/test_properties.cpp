// Cross-module property sweeps (TEST_P): simulator invariants across the
// parameter space, aggregation algebra on random tables, end-to-end
// pipeline consistency.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <tuple>

#include "core/projection.hpp"
#include "core/query.hpp"
#include "core/views.hpp"
#include "helpers.hpp"
#include "netsim/network.hpp"
#include "workload/workload.hpp"

namespace dv {
namespace {

// ------------------------------------------------------- netsim invariants

using SimParams = std::tuple<std::uint32_t /*packet*/, std::uint32_t /*buf*/,
                             std::uint32_t /*p*/>;

class SimSweep : public ::testing::TestWithParam<SimParams> {};

TEST_P(SimSweep, ConservationAndAccountingInvariants) {
  const auto [packet, buf, p] = GetParam();
  const auto topo = topo::Dragonfly::canonical(p);
  netsim::Params params;
  params.packet_size = packet;
  params.vc_buffer_packets = buf;
  params.event_budget = 80'000'000;
  netsim::Network net(topo, routing::Algo::kAdaptive, params, 5);

  Rng rng(11);
  std::uint64_t injected = 0;
  for (int i = 0; i < 250; ++i) {
    const auto src =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    const std::uint64_t bytes = 1 + rng.next_below(3 * packet);
    injected += bytes;
    net.add_message({src, dst, bytes, rng.next_double() * 30000.0, 0});
  }
  const auto m = net.run();

  // Byte conservation at the terminals.
  EXPECT_DOUBLE_EQ(m.total_injected(), static_cast<double>(injected));
  EXPECT_EQ(net.packets_injected(), net.packets_delivered());

  // Non-negative metrics everywhere; saturation bounded by run time.
  for (const auto& l : m.local_links) {
    EXPECT_GE(l.traffic, 0.0);
    EXPECT_GE(l.sat_time, 0.0);
    // Credits + backlog each contribute at most end_time per VC/port.
    EXPECT_LE(l.sat_time,
              m.end_time * (routing::RoutePlanner(topo, routing::Algo::kAdaptive)
                                .max_link_hops() +
                            1));
  }
  // Hops within the routing bound; latency positive.
  for (const auto& t : m.terminals) {
    if (t.packets_finished == 0) continue;
    EXPECT_GT(t.avg_latency(), 0.0);
    EXPECT_GE(t.avg_hops(), 1.0);
    EXPECT_LE(t.avg_hops(), 8.0);
  }
  // Global traffic only between distinct groups.
  for (const auto& l : m.global_links) {
    if (l.traffic > 0) {
      EXPECT_NE(l.src_router / topo.routers_per_group(),
                l.dst_router / topo.routers_per_group());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Space, SimSweep,
    ::testing::Values(SimParams{256, 2, 2}, SimParams{256, 16, 2},
                      SimParams{2048, 2, 2}, SimParams{2048, 8, 3},
                      SimParams{512, 4, 3}, SimParams{4096, 8, 2}));

// ------------------------------------------------------- workload volumes

class VolumeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(VolumeSweep, GeneratedVolumeTracksTarget) {
  const auto [name, bytes] = GetParam();
  workload::Config cfg;
  cfg.ranks = 96;
  cfg.total_bytes = bytes;
  cfg.window = 1.0e5;
  cfg.seed = 2;
  const auto msgs = workload::generate(name, cfg);
  const auto total = workload::total_bytes(msgs);
  EXPECT_LE(total, bytes);
  EXPECT_GE(total, bytes * 80 / 100) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VolumeSweep,
    ::testing::Combine(
        ::testing::Values("uniform_random", "nearest_neighbor", "amg",
                          "amr_boxlib", "minife", "permutation"),
        ::testing::Values(std::uint64_t{1} << 18, std::uint64_t{1} << 22,
                          std::uint64_t{1} << 25)));

// ------------------------------------------------------- aggregation algebra

class BinSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinSweep, BinnedPartitionIsCompleteAndOrdered) {
  const std::size_t max_bins = GetParam();
  Rng rng(max_bins + 1);
  const std::size_t n = 500;
  std::vector<double> key(n), val(n);
  for (std::size_t i = 0; i < n; ++i) {
    key[i] = static_cast<double>(rng.next_below(97));
    val[i] = rng.next_double();
  }
  const double total = std::accumulate(val.begin(), val.end(), 0.0);
  core::DataTable t;
  t.add_column("k", key);
  t.add_column("v", val);
  core::AggregationSpec spec;
  spec.keys = {"k"};
  spec.max_bins = max_bins;
  const core::Aggregation agg(t, spec);
  // bucket = floor(distinct / max_bins), so the partition count is bounded
  // by 2 * max_bins (and equals the distinct-key count when unbinned).
  if (max_bins) {
    EXPECT_LE(agg.size(), 2 * max_bins);
  }
  // Every row lands in exactly one group.
  std::size_t covered = 0;
  for (const auto& g : agg.groups()) covered += g.rows.size();
  EXPECT_EQ(covered, n);
  // Sums are preserved and groups are key-ordered.
  const auto sums = agg.reduce("v", core::Reducer::kSum);
  EXPECT_NEAR(std::accumulate(sums.begin(), sums.end(), 0.0), total, 1e-9);
  for (std::size_t g = 1; g < agg.size(); ++g) {
    EXPECT_LT(agg.groups()[g - 1].keys[0], agg.groups()[g].keys[0] + 1e-12);
  }
  // Bins respect key order: max key of bin i < min key of bin i+1.
  if (agg.binned()) {
    for (std::size_t g = 1; g < agg.size(); ++g) {
      double prev_max = -1e300, cur_min = 1e300;
      for (std::uint32_t r : agg.groups()[g - 1].rows) {
        prev_max = std::max(prev_max, key[r]);
      }
      for (std::uint32_t r : agg.groups()[g].rows) {
        cur_min = std::min(cur_min, key[r]);
      }
      EXPECT_LT(prev_max, cur_min);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, BinSweep,
                         ::testing::Values(0u, 1u, 2u, 5u, 8u, 16u, 50u,
                                           200u));

// ------------------------------------------------------- pipeline sanity

TEST(Pipeline, ProjectionTotalsMatchRawTables) {
  // Whatever the grouping, the summed 'size' channel over a traffic ring
  // equals the table total — aggregation never invents or loses traffic.
  const auto mini = dv::testing::make_mini_run();
  const core::DataSet data(mini.run);
  for (const char* key : {"group_id", "router_rank", "router_port"}) {
    const auto spec = core::SpecBuilder()
                          .level(core::Entity::kGlobalLink)
                          .aggregate({key})
                          .size("traffic")
                          .color("sat_time")
                          .no_ribbons()
                          .build();
    const core::ProjectionView view(data, spec);
    double ring_total = 0;
    for (const auto& it : view.rings()[0].items) ring_total += it.size_value;
    EXPECT_NEAR(ring_total, mini.run.total_global_traffic(),
                ring_total * 1e-9)
        << key;
  }
}

TEST(Pipeline, SessionSliceEqualsManualSlice) {
  const auto mini = dv::testing::make_mini_run();
  const double end = mini.run.end_time;
  core::AnalysisSession session{
      core::DataSet(mini.run),
      core::SpecBuilder()
          .level(core::Entity::kLocalLink)
          .aggregate({"group_id"})
          .size("traffic")
          .color("sat_time")
          .no_ribbons()
          .build()};
  session.select_time_range(end * 0.2, end * 0.6);
  double session_total = 0;
  for (const auto& it : session.projection().rings()[0].items) {
    session_total += it.size_value;
  }
  const core::DataSet manual =
      core::DataSet(mini.run).slice_time(end * 0.2, end * 0.6);
  const auto& col = manual.table(core::Entity::kLocalLink).column("traffic");
  const double manual_total = std::accumulate(col.begin(), col.end(), 0.0);
  EXPECT_NEAR(session_total, manual_total, 1e-6 + manual_total * 1e-9);
}

// ----------------------------------------------------- query-engine algebra

namespace qprop {

struct RandomQuery {
  core::Entity entity;
  core::AggregationSpec spec;
  std::string attr;
  core::Reducer reducer;
};

/// Draws a random but valid query: entity, keys, bins, filters (bounded,
/// one-sided, or unbounded), reducer, attribute, and an optional window.
RandomQuery draw(std::mt19937& rng, double end_time) {
  static const struct {
    core::Entity entity;
    std::vector<const char*> keys;
    std::vector<const char*> attrs;
  } kPools[] = {
      {core::Entity::kLocalLink,
       {"group_id", "router_rank", "router_port", "src_job"},
       {"traffic", "sat_time"}},
      {core::Entity::kGlobalLink,
       {"group_id", "router_rank", "dst_group"},
       {"traffic", "sat_time"}},
      {core::Entity::kTerminal,
       {"group_id", "router_rank", "router_port", "workload"},
       {"data_size", "sat_time", "avg_latency", "avg_hops"}},
      {core::Entity::kRouter,
       {"group_id", "router_rank"},
       {"local_traffic", "global_traffic", "local_sat_time"}},
  };
  const auto& pool = kPools[rng() % 4];

  RandomQuery q;
  q.entity = pool.entity;
  const std::size_t n_keys = 1 + rng() % 2;
  for (std::size_t i = 0; i < n_keys; ++i) {
    const char* k = pool.keys[rng() % pool.keys.size()];
    if (q.spec.keys.empty() || q.spec.keys[0] != k) q.spec.keys.push_back(k);
  }
  if (rng() % 3 == 0) q.spec.max_bins = 2 + rng() % 12;
  if (rng() % 3 == 0) {
    core::AttrFilter f;
    f.attr = pool.attrs[rng() % pool.attrs.size()];
    switch (rng() % 3) {
      case 0: f.lo = 0.0; break;                      // one-sided
      case 1: f.hi = 1e12; break;                     // one-sided
      default: f.lo = 0.0; f.hi = 1e12; break;        // bounded
    }
    q.spec.filters.push_back(std::move(f));
  }
  q.attr = pool.attrs[rng() % pool.attrs.size()];
  static const core::Reducer kReducers[] = {
      core::Reducer::kSum, core::Reducer::kMean, core::Reducer::kMax,
      core::Reducer::kMin, core::Reducer::kCount};
  q.reducer = kReducers[rng() % 5];
  if (rng() % 2) {
    const double a = (rng() % 1000) / 1000.0 * end_time;
    const double b = (rng() % 1000) / 1000.0 * end_time;
    if (a != b) q.spec.window = core::TimeWindow{std::min(a, b), std::max(a, b)};
  }
  return q;
}

}  // namespace qprop

TEST(QueryProperty, CachedEqualsFreshRecomputeBitExactAcross1000Specs) {
  // The acceptance-criteria sweep: for >= 1000 random specs, a warmed
  // shared engine returns results bit-identical to a fresh engine's cold
  // recompute. EXPECT_EQ on doubles is exact equality on purpose.
  const auto mini = dv::testing::make_mini_run();
  const core::DataSet data(mini.run);
  const double end = mini.run.end_time;
  core::QueryEngine warmed(data, 256);
  std::mt19937 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto q = qprop::draw(rng, end);
    // Query twice so the second answer is (usually) served from cache.
    (void)warmed.reduce(q.entity, q.spec, q.attr, q.reducer);
    const auto cached = warmed.reduce(q.entity, q.spec, q.attr, q.reducer);
    core::QueryEngine fresh(data);
    const auto cold = fresh.reduce(q.entity, q.spec, q.attr, q.reducer);
    ASSERT_EQ(cached->size(), cold->size()) << "spec " << i;
    for (std::size_t g = 0; g < cold->size(); ++g) {
      ASSERT_EQ((*cached)[g], (*cold)[g])
          << "spec " << i << " group " << g << " (cached vs recompute)";
    }
  }
  const auto s = warmed.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
}

TEST(QueryProperty, WindowCoveringWholeRunMatchesFullAggregation) {
  // Sum over [0, end] equals the unwindowed aggregation up to sampling
  // float precision (series store float deltas, totals are doubles).
  const auto mini = dv::testing::make_mini_run();
  const core::DataSet data(mini.run);
  core::QueryEngine eng(data);
  core::AggregationSpec spec;
  spec.keys = {"group_id"};
  const auto full = eng.reduce(core::Entity::kGlobalLink, spec, "traffic",
                               core::Reducer::kSum);
  spec.window = core::TimeWindow{0.0, mini.run.end_time + 1.0};
  const auto windowed = eng.reduce(core::Entity::kGlobalLink, spec, "traffic",
                                   core::Reducer::kSum);
  ASSERT_EQ(full->size(), windowed->size());
  for (std::size_t g = 0; g < full->size(); ++g) {
    EXPECT_NEAR((*windowed)[g], (*full)[g], 1e-3 + (*full)[g] * 1e-4)
        << "group " << g;
  }
}

TEST(QueryProperty, WindowedSumsAreAdditiveAtFrameBoundaries) {
  // [0, m) + [m, end) = [0, end) when m is frame-aligned (windows quantize
  // to frames, so only aligned splits partition exactly).
  const auto mini = dv::testing::make_mini_run();
  const core::DataSet data(mini.run);
  core::QueryEngine eng(data);
  const double dt = mini.run.sample_dt;
  const std::size_t frames = mini.run.global_traffic_ts.frames();
  ASSERT_GT(frames, 2u);
  const double mid = dt * static_cast<double>(frames / 2);
  const double end = dt * static_cast<double>(frames);

  core::AggregationSpec spec;
  spec.keys = {"group_id"};
  auto sum_over = [&](double t0, double t1) {
    auto s = spec;
    s.window = core::TimeWindow{t0, t1};
    return *eng.reduce(core::Entity::kGlobalLink, s, "traffic",
                       core::Reducer::kSum);
  };
  const auto left = sum_over(0.0, mid);
  const auto right = sum_over(mid, end);
  const auto whole = sum_over(0.0, end);
  ASSERT_EQ(left.size(), whole.size());
  ASSERT_EQ(right.size(), whole.size());
  for (std::size_t g = 0; g < whole.size(); ++g) {
    EXPECT_NEAR(left[g] + right[g], whole[g], 1e-6 + whole[g] * 1e-9)
        << "group " << g;
  }
}

TEST(QueryProperty, WindowedMeanStaysPacketWeighted) {
  // kMean weights by packets_finished. Windowing replaces the sampled value
  // columns but never the weights, so the windowed mean must equal the
  // hand-computed packet-weighted mean over the windowed values.
  const auto mini = dv::testing::make_mini_run();
  const core::DataSet data(mini.run);
  core::QueryEngine eng(data);
  const double end = mini.run.end_time;
  core::AggregationSpec spec;
  spec.keys = {"router_rank"};
  spec.window = core::TimeWindow{end * 0.2, end * 0.8};
  const auto got = eng.reduce(core::Entity::kTerminal, spec, "data_size",
                              core::Reducer::kMean);

  const core::DataTable wt =
      data.windowed_table(core::Entity::kTerminal, end * 0.2, end * 0.8);
  const auto agg = eng.aggregate(core::Entity::kTerminal, spec);
  const auto& vals = wt.column("data_size");
  const auto& weights = wt.column("packets_finished");
  ASSERT_EQ(got->size(), agg->size());
  for (std::size_t g = 0; g < agg->size(); ++g) {
    double acc = 0.0, wsum = 0.0;
    for (std::uint32_t row : agg->groups()[g].rows) {
      acc += vals[row] * weights[row];
      wsum += weights[row];
    }
    const double want = wsum > 0 ? acc / wsum : 0.0;
    EXPECT_DOUBLE_EQ((*got)[g], want) << "group " << g;
  }
}

TEST(Pipeline, SeedChangesRandomPlacementButNotTotals) {
  const auto a = dv::testing::make_mini_run(routing::Algo::kAdaptive,
                                            placement::Policy::kRandomNode,
                                            placement::Policy::kRandomNode, 1);
  const auto b = dv::testing::make_mini_run(routing::Algo::kAdaptive,
                                            placement::Policy::kRandomNode,
                                            placement::Policy::kRandomNode, 2);
  EXPECT_NE(a.placement.terminals, b.placement.terminals);
  // Same workload volume regardless of placement seed.
  EXPECT_NEAR(a.run.total_injected(), b.run.total_injected(),
              a.run.total_injected() * 0.02);
}

}  // namespace
}  // namespace dv
