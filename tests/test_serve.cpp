// The serve daemon: protocol round-trips over a socketpair, error paths,
// cross-session cache sharing, session lifecycle/teardown, byte-identity
// of daemon renders with the direct in-process path, admission control,
// and the docs-coverage contract (every dispatch-table verb documented).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "core/presets.hpp"
#include "core/projection.hpp"
#include "helpers.hpp"
#include "serve/client.hpp"
#include "serve/net_io.hpp"
#include "serve/server.hpp"

namespace dv {
namespace {

using serve::Address;
using serve::Client;
using serve::FrameStream;
using serve::RpcError;
using serve::ServeOptions;
using serve::Server;

const dv::testing::MiniRun& mini() {
  static const auto run = dv::testing::make_mini_run();
  return run;
}

/// The mini run saved to disk once (the daemon loads runs from files).
const std::string& mini_run_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "dv_serve_mini_run.json";
    mini().run.save(p);
    return p;
  }();
  return path;
}

ServeOptions test_options() {
  ServeOptions opts;
  opts.workers = 2;
  opts.max_queue = 16;
  return opts;
}

/// One client connection to an in-process server over a socketpair: the
/// server end is driven by a dedicated thread running serve_fd, exactly
/// like a connection accepted from a listening socket.
struct Conn {
  explicit Conn(Server& server) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    thread = std::thread([&server, fd = sv[0]] { server.serve_fd(fd); });
    client.emplace(sv[1]);
  }
  ~Conn() { close(); }

  void close() {
    client.reset();  // EOF on the server side ends serve_fd
    if (thread.joinable()) thread.join();
  }

  std::optional<Client> client;
  std::thread thread;
};

// --------------------------------------------------------------- protocol

TEST(ServeProtocol, HelloPingRoundTrip) {
  Server server(test_options());
  Conn conn(server);
  const auto hello = conn.client->call("hello");
  EXPECT_EQ(serve::kProtocolVersion,
            static_cast<int>(hello.get_number("protocol", 0)));
  EXPECT_EQ("dragonviz serve", hello.get_string("server", ""));
  EXPECT_EQ(serve::protocol_verbs().size(),
            hello.at("verbs").as_array().size());
  const auto pong = conn.client->call("ping");
  EXPECT_TRUE(pong.get_bool("pong", false));
}

TEST(ServeProtocol, MalformedFramesGetParseErrorsAndKeepTheConnection) {
  Server server(test_options());
  int sv[2] = {-1, -1};
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  std::thread t([&server, fd = sv[0]] { server.serve_fd(fd); });
  {
    FrameStream raw(sv[1]);
    std::string frame;

    raw.write_frame("this is not json");
    ASSERT_TRUE(raw.read_frame(frame));
    auto resp = json::parse(frame);
    EXPECT_FALSE(resp.get_bool("ok", true));
    EXPECT_EQ("parse", resp.at("error").get_string("code", ""));

    raw.write_frame("[1, 2, 3]");  // JSON, but not a request object
    ASSERT_TRUE(raw.read_frame(frame));
    resp = json::parse(frame);
    EXPECT_EQ("parse", resp.at("error").get_string("code", ""));

    raw.write_frame("{\"id\": 7, \"verb\": \"frobnicate\"}");
    ASSERT_TRUE(raw.read_frame(frame));
    resp = json::parse(frame);
    EXPECT_EQ(7, static_cast<int>(resp.get_number("id", 0)));
    EXPECT_EQ("unknown_verb", resp.at("error").get_string("code", ""));

    // Errors must not poison the connection: a good request still works.
    raw.write_frame("{\"id\": 8, \"verb\": \"ping\"}");
    ASSERT_TRUE(raw.read_frame(frame));
    resp = json::parse(frame);
    EXPECT_TRUE(resp.get_bool("ok", false));
  }
  t.join();
}

TEST(ServeProtocol, ErrorCodesDistinguishBadRequestAndNotFound) {
  Server server(test_options());
  Conn conn(server);
  try {
    json::Object p;
    p["spec"] = json::Value("preset:overview");
    conn.client->call("render", json::Value(std::move(p)));
    FAIL() << "render without a run must fail";
  } catch (const RpcError& e) {
    EXPECT_EQ("bad_request", e.code);
  }
  try {
    json::Object p;
    p["run"] = json::Value("nope");
    conn.client->call("use", json::Value(std::move(p)));
    FAIL() << "use of an unknown run must fail";
  } catch (const RpcError& e) {
    EXPECT_EQ("not_found", e.code);
  }
}

// ------------------------------------------------------------ cache sharing

json::Value render_params(const std::string& run = "mini") {
  json::Object p;
  if (!run.empty()) p["run"] = json::Value(run);
  p["spec"] = json::Value("preset:overview");
  return json::Value(std::move(p));
}

TEST(ServeCache, TwoSessionsShareOneResultCache) {
  Server server(test_options());
  server.catalog().load(mini_run_path(), "mini");
  Conn a(server);
  Conn b(server);

  const auto ra = a.client->call("render", render_params());
  const auto sa = a.client->call("stats");
  const double misses_after_a = sa.at("cache").get_number("misses", -1);
  const double hits_after_a = sa.at("cache").get_number("hits", -1);
  EXPECT_GT(misses_after_a, 0);

  const auto rb = b.client->call("render", render_params());
  const auto sb = b.client->call("stats");
  // B's identical render is served from the cache A populated: hits move,
  // misses do not.
  EXPECT_EQ(misses_after_a, sb.at("cache").get_number("misses", -1));
  EXPECT_GT(sb.at("cache").get_number("hits", -1), hits_after_a);
  EXPECT_EQ(ra.at("svg").as_string(), rb.at("svg").as_string());
}

TEST(ServeCache, DaemonRenderIsByteIdenticalToDirectRender) {
  Server server(test_options());
  server.catalog().load(mini_run_path(), "mini");
  Conn conn(server);

  const auto first = conn.client->call("render", render_params());
  const auto second = conn.client->call("render", render_params());
  // Cached result == freshly computed result, byte for byte.
  EXPECT_EQ(first.at("svg").as_string(), second.at("svg").as_string());

  // And both match the direct in-process path with the CLI's defaults
  // (size 800, title "<workload> / <routing>") on the same file.
  const core::DataSet data(metrics::RunMetrics::load(mini_run_path()));
  core::QueryEngine engine(data);
  const core::ProjectionView view(data, core::preset("overview"), nullptr,
                                  &engine);
  const std::string direct = view.to_svg(
      800, data.run().workload + " / " + data.run().routing);
  EXPECT_EQ(direct, first.at("svg").as_string());
}

TEST(ServeCache, WindowedRenderMatchesSpecWindow) {
  Server server(test_options());
  server.catalog().load(mini_run_path(), "mini");
  Conn conn(server);
  const double end = mini().run.end_time;
  const double t0 = end * 0.2, t1 = end * 0.8;

  // Session window (set via the window verb) ...
  json::Object w;
  w["t0"] = json::Value(t0);
  w["t1"] = json::Value(t1);
  conn.client->call("window", json::Value(std::move(w)));
  const auto via_session = conn.client->call("render", render_params());

  // ... must produce the same bytes as an explicit per-request window.
  json::Object cw;
  cw["clear"] = json::Value(true);
  conn.client->call("window", json::Value(std::move(cw)));
  auto p = render_params();
  p.as_object()["window"] =
      json::Value(json::Array{json::Value(t0), json::Value(t1)});
  const auto via_param = conn.client->call("render", p);
  EXPECT_EQ(via_session.at("svg").as_string(),
            via_param.at("svg").as_string());

  // And differ from the unwindowed render.
  const auto full = conn.client->call("render", render_params());
  EXPECT_NE(full.at("svg").as_string(), via_param.at("svg").as_string());
}

// -------------------------------------------------------- session lifecycle

TEST(ServeSession, TeardownFreesBrushState) {
  Server server(test_options());
  server.catalog().load(mini_run_path(), "mini");
  auto a = std::make_unique<Conn>(server);
  Conn b(server);

  json::Object brush;
  brush["axis"] = json::Value("avg_latency");
  brush["lo"] = json::Value(0.0);
  brush["hi"] = json::Value(1e12);
  const auto echo = a->client->call("brush", json::Value(std::move(brush)));
  EXPECT_EQ(1u, echo.at("brushes").as_array().size());

  auto stats = b.client->call("stats");
  EXPECT_EQ(2, stats.at("server").get_number("sessions", -1));
  EXPECT_EQ(1, stats.at("server").get_number("active_brushes", -1));

  a->client->call("bye");
  a->close();  // joins the server-side reader; session destroyed

  stats = b.client->call("stats");
  EXPECT_EQ(1, stats.at("server").get_number("sessions", -1));
  EXPECT_EQ(0, stats.at("server").get_number("active_brushes", -1));
}

TEST(ServeSession, BrushReplacesSameAxisAndClears) {
  Server server(test_options());
  Conn conn(server);
  json::Object b1;
  b1["axis"] = json::Value("avg_hops");
  b1["hi"] = json::Value(4.0);
  conn.client->call("brush", json::Value(std::move(b1)));
  json::Object b2;
  b2["axis"] = json::Value("avg_hops");
  b2["hi"] = json::Value(5.0);
  const auto echo = conn.client->call("brush", json::Value(std::move(b2)));
  ASSERT_EQ(1u, echo.at("brushes").as_array().size());
  EXPECT_EQ(5.0, echo.at("brushes").as_array()[0].get_number("hi", 0));
  // Unbounded lo is omitted from the echo (infinity has no JSON form).
  EXPECT_EQ(nullptr, echo.at("brushes").as_array()[0].find("lo"));

  json::Object clear;
  clear["clear"] = json::Value(true);
  const auto cleared = conn.client->call("brush", json::Value(std::move(clear)));
  EXPECT_TRUE(cleared.at("brushes").as_array().empty());
}

TEST(ServeSession, StatsCarriesPerSessionCounters) {
  Server server(test_options());
  server.catalog().load(mini_run_path(), "mini");
  Conn conn(server);
  conn.client->call("ping");
  conn.client->call("render", render_params());
  const auto stats = conn.client->call("stats");
  const auto& s = stats.at("session");
  EXPECT_GE(s.get_number("requests", 0), 3);  // ping + render + stats
  EXPECT_EQ(1, s.get_number("renders", -1));
  EXPECT_EQ(0, s.get_number("errors", -1));
  // Latency percentiles exist for the verbs this session exercised.
  EXPECT_GE(stats.at("latency_ms").at("render").get_number("count", 0), 1);
}

// --------------------------------------------------------------- admission

TEST(ServeAdmission, FullQueueRejectsWithOverloaded) {
  ServeOptions opts = test_options();
  opts.max_queue = 0;  // admission rejects every pool-bound request
  Server server(opts);
  server.catalog().load(mini_run_path(), "mini");
  Conn conn(server);
  try {
    conn.client->call("render", render_params());
    FAIL() << "render must be rejected when the queue is full";
  } catch (const RpcError& e) {
    EXPECT_EQ("overloaded", e.code);
  }
  // Light verbs bypass the pool and still work.
  EXPECT_TRUE(conn.client->call("ping").get_bool("pong", false));
}

// ------------------------------------------------------------------- docs

TEST(ServeDocs, EveryVerbIsDocumentedInTheProtocolDoc) {
  std::ifstream is(std::string(DV_DOCS_DIR) + "/SERVE_PROTOCOL.md");
  ASSERT_TRUE(is.good()) << "docs/SERVE_PROTOCOL.md missing";
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string doc = buf.str();
  for (const auto& verb : serve::protocol_verbs()) {
    // Each verb gets its own "### `verb`" section heading.
    EXPECT_NE(std::string::npos, doc.find("### `" + verb.name + "`"))
        << "verb '" << verb.name
        << "' is in the dispatch table but not documented in "
           "docs/SERVE_PROTOCOL.md";
  }
  // Every wire error code is documented too.
  for (const char* code : {"parse", "bad_request", "unknown_verb",
                           "not_found", "overloaded", "internal"}) {
    EXPECT_NE(std::string::npos, doc.find(std::string("`") + code + "`"))
        << "error code '" << code << "' undocumented";
  }
}

// --------------------------------------------------------------- plumbing

TEST(ServeNet, AddressParse) {
  const auto u = Address::parse("unix:/tmp/x.sock");
  EXPECT_EQ(Address::Kind::kUnix, u.kind);
  EXPECT_EQ("/tmp/x.sock", u.path);

  const auto t = Address::parse("tcp:4100");
  EXPECT_EQ(Address::Kind::kTcp, t.kind);
  EXPECT_EQ("127.0.0.1", t.host);
  EXPECT_EQ(4100, t.port);

  const auto th = Address::parse("tcp:127.0.0.1:4200");
  EXPECT_EQ("127.0.0.1", th.host);
  EXPECT_EQ(4200, th.port);

  EXPECT_THROW(Address::parse("http://nope"), Error);
  EXPECT_THROW(Address::parse("tcp:notaport"), Error);
}

TEST(ServeNet, FrameStreamSplitsBufferedFramesAndBoundsSize) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  FrameStream writer(sv[0]);
  FrameStream reader(sv[1], 64);  // tight frame bound for the oversize case

  writer.write_frame("alpha");
  writer.write_frame("beta");
  std::string frame;
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ("alpha", frame);
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ("beta", frame);

  writer.write_frame(std::string(256, 'x'));
  EXPECT_THROW(reader.read_frame(frame), Error);
}

TEST(ServeCatalog, SplitRunRef) {
  const auto [n1, p1] = serve::split_run_ref("runs/amg_adaptive.json");
  EXPECT_EQ("amg_adaptive", n1);
  EXPECT_EQ("runs/amg_adaptive.json", p1);
  const auto [n2, p2] = serve::split_run_ref("mine=out/x.json");
  EXPECT_EQ("mine", n2);
  EXPECT_EQ("out/x.json", p2);
  EXPECT_THROW(serve::split_run_ref("=x.json"), Error);
}

TEST(ServeCatalog, LoadGetUnloadKeepReferencesAlive) {
  serve::RunCatalog catalog(64, 2);
  const auto lr = catalog.load(mini_run_path(), "mini");
  EXPECT_EQ(1u, catalog.size());
  EXPECT_EQ(lr.get(), catalog.get("mini").get());
  catalog.unload("mini");
  EXPECT_EQ(0u, catalog.size());
  EXPECT_THROW(catalog.get("mini"), Error);
  // The handed-out run outlives its catalog entry.
  EXPECT_EQ("mixed", lr->data.run().workload);
  EXPECT_THROW(catalog.unload("mini"), Error);
}

}  // namespace
}  // namespace dv
