// RunMetrics schema tests: derivation, serialization, time series, CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "metrics/run_metrics.hpp"
#include "metrics/run_store.hpp"
#include "netsim/network.hpp"

namespace dv::metrics {
namespace {

/// A small simulated run shared by the tests.
RunMetrics sample_run(bool sampled) {
  const auto topo = topo::Dragonfly::canonical(2);
  netsim::Params p;
  p.packet_size = 512;
  netsim::Network net(topo, routing::Algo::kAdaptive, p, 17);
  net.set_labels("uniform_random", "contiguous", {"job0"});
  Rng rng(2);
  for (int i = 0; i < 120; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    net.add_message({src, dst, 3000, rng.next_double() * 5000.0, 0});
  }
  if (sampled) net.enable_sampling(400.0);
  return net.run();
}

TEST(Metrics, DeriveRoutersSumsLinks) {
  const auto m = sample_run(false);
  const auto routers = m.derive_routers();
  ASSERT_EQ(routers.size(), m.groups * m.routers_per_group);
  double rl = 0, rg = 0;
  for (const auto& r : routers) {
    rl += r.local_traffic;
    rg += r.global_traffic;
  }
  EXPECT_DOUBLE_EQ(rl, m.total_local_traffic());
  EXPECT_DOUBLE_EQ(rg, m.total_global_traffic());
  EXPECT_EQ(routers[5].group, 5 / m.routers_per_group);
  EXPECT_EQ(routers[5].rank, 5 % m.routers_per_group);
}

TEST(Metrics, JsonRoundTripUnsampled) {
  const auto m = sample_run(false);
  const auto back = RunMetrics::from_json(m.to_json());
  EXPECT_EQ(back.groups, m.groups);
  EXPECT_EQ(back.workload, m.workload);
  EXPECT_EQ(back.terminals.size(), m.terminals.size());
  EXPECT_DOUBLE_EQ(back.total_local_traffic(), m.total_local_traffic());
  EXPECT_DOUBLE_EQ(back.end_time, m.end_time);
  EXPECT_EQ(back.total_packets_finished(), m.total_packets_finished());
  for (std::size_t i = 0; i < m.terminals.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.terminals[i].avg_latency(),
                     m.terminals[i].avg_latency());
  }
}

TEST(Metrics, FileRoundTripSampled) {
  const auto m = sample_run(true);
  ASSERT_TRUE(m.has_time_series());
  const std::string path =
      (std::filesystem::temp_directory_path() / "dv_metrics_test.json")
          .string();
  m.save(path);
  const auto back = RunMetrics::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.has_time_series());
  EXPECT_EQ(back.local_traffic_ts.frames(), m.local_traffic_ts.frames());
  // Spot-check a frame.
  const std::size_t f = m.local_traffic_ts.frames() / 2;
  for (std::size_t e = 0; e < m.local_traffic_ts.entities(); e += 7) {
    EXPECT_FLOAT_EQ(back.local_traffic_ts.at(f, e),
                    m.local_traffic_ts.at(f, e));
  }
}

TEST(Metrics, SampledSeriesRangeOps) {
  SampledSeries s(3, 10.0);
  s.push_frame({1.0f, 2.0f, 3.0f});
  s.push_frame({4.0f, 5.0f, 6.0f});
  s.push_frame({7.0f, 8.0f, 9.0f});
  EXPECT_EQ(s.frames(), 3u);
  EXPECT_DOUBLE_EQ(s.frame_total(1), 15.0);
  EXPECT_DOUBLE_EQ(s.range_sum(0, 0, 3), 12.0);
  EXPECT_DOUBLE_EQ(s.range_sum(2, 1, 2), 6.0);
  EXPECT_EQ(s.frame_of(-5.0), 0u);
  EXPECT_EQ(s.frame_of(15.0), 1u);
  EXPECT_EQ(s.frame_of(1e9), 2u);
  EXPECT_THROW(s.push_frame({1.0f}), Error);
  EXPECT_THROW(s.range_sum(0, 2, 1), Error);
}

TEST(Metrics, CsvExportShapes) {
  const auto m = sample_run(false);
  const auto links = m.to_csv("local_links");
  EXPECT_EQ(links.rows.size(), m.local_links.size());
  EXPECT_EQ(links.header.size(), 9u);
  const auto terms = m.to_csv("terminals");
  EXPECT_EQ(terms.rows.size(), m.terminals.size());
  const auto routers = m.to_csv("routers");
  EXPECT_EQ(routers.rows.size(), m.groups * m.routers_per_group);
  EXPECT_THROW(m.to_csv("bogus"), Error);
}

TEST(RunStore, AddListLoadRemove) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "dv_run_store_test").string();
  std::filesystem::remove_all(dir);
  {
    RunStore store(dir);
    EXPECT_EQ(store.size(), 0u);
    const auto run = sample_run(false);
    const auto name = store.add(run);
    EXPECT_EQ(name, "uniform_random_adaptive_contiguous");
    EXPECT_TRUE(store.contains(name));
    // Duplicate names get suffixed.
    const auto name2 = store.add(run);
    EXPECT_EQ(name2, "uniform_random_adaptive_contiguous_2");
    const auto loaded = store.load(name);
    EXPECT_EQ(loaded.workload, run.workload);
    EXPECT_DOUBLE_EQ(loaded.end_time, run.end_time);
  }
  {
    // The index persists across store instances.
    RunStore reopened(dir);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.find("uniform_random").size(), 2u);
    EXPECT_EQ(reopened.find("uniform_random", "minimal").size(), 0u);
    reopened.remove("uniform_random_adaptive_contiguous_2");
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_THROW(reopened.load("gone"), Error);
    EXPECT_THROW(reopened.remove("gone"), Error);
  }
  RunStore final_check(dir);
  EXPECT_EQ(final_check.size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(RunStore, CustomNameAndMetadata) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "dv_run_store_test2").string();
  std::filesystem::remove_all(dir);
  RunStore store(dir);
  const auto run = sample_run(true);
  store.add(run, "my_run");
  ASSERT_EQ(store.list().size(), 1u);
  const auto& info = store.list()[0];
  EXPECT_EQ(info.name, "my_run");
  EXPECT_EQ(info.terminals, 72u);
  EXPECT_TRUE(info.sampled);
  EXPECT_GT(info.end_time, 0.0);
  std::filesystem::remove_all(dir);
}

TEST(Metrics, TerminalAverages) {
  TerminalMetrics t;
  EXPECT_DOUBLE_EQ(t.avg_latency(), 0.0);  // no division by zero
  t.packets_finished = 4;
  t.sum_latency = 100.0;
  t.sum_hops = 10.0;
  EXPECT_DOUBLE_EQ(t.avg_latency(), 25.0);
  EXPECT_DOUBLE_EQ(t.avg_hops(), 2.5);
}

}  // namespace
}  // namespace dv::metrics
