// Trace record/replay tests (binary + JSON round trips, validation).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/trace.hpp"

namespace dv::trace {
namespace {

workload::Config cfg() {
  workload::Config c;
  c.ranks = 32;
  c.total_bytes = 1 << 20;
  c.window = 5.0e4;
  c.seed = 11;
  return c;
}

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Trace, RecordValidates) {
  const auto msgs = workload::generate_amg(cfg());
  const Trace t = record("amg", 32, msgs);
  EXPECT_EQ(t.app, "amg");
  EXPECT_EQ(t.total_bytes(), workload::total_bytes(msgs));
}

TEST(Trace, BinaryRoundTrip) {
  const Trace t = record("minife", 32, workload::generate_minife(cfg()));
  const std::string path = tmp_path("dv_trace_test.dvtr");
  save_binary(t, path);
  const Trace back = load_binary(path);
  EXPECT_EQ(back, t);
  std::remove(path.c_str());
}

TEST(Trace, JsonRoundTrip) {
  const Trace t =
      record("amr_boxlib", 32, workload::generate_amr_boxlib(cfg()));
  const Trace back = from_json(to_json(t));
  EXPECT_EQ(back, t);
}

TEST(Trace, ReplayEqualsDirectGeneration) {
  // The trace-driven path must produce byte-identical netsim messages.
  const auto topo = topo::Dragonfly::canonical(2);
  const auto placement = placement::place_jobs(
      topo, {{"job", 32, placement::Policy::kRandomGroup}}, 9);
  const auto msgs = workload::generate_amg(cfg());
  const Trace t = record("amg", 32, msgs);

  const auto direct = workload::map_to_terminals(msgs, placement, 0);
  const auto replayed = workload::map_to_terminals(t.messages, placement, 0);
  ASSERT_EQ(direct.size(), replayed.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].src_terminal, replayed[i].src_terminal);
    EXPECT_EQ(direct[i].dst_terminal, replayed[i].dst_terminal);
    EXPECT_EQ(direct[i].bytes, replayed[i].bytes);
  }
}

TEST(Trace, SummaryStatistics) {
  auto c = cfg();
  c.ranks = 64;
  const Trace amg = record("amg", 64, workload::generate_amg(c));
  const auto s = summarize(amg);
  EXPECT_EQ(s.messages, amg.messages.size());
  EXPECT_EQ(s.bytes, amg.total_bytes());
  EXPECT_EQ(s.active_ranks, 64u);
  EXPECT_GT(s.avg_degree, 3.0);
  EXPECT_EQ(s.max_degree, 6u);  // 3-D halo interior
  EXPECT_GE(s.t_last, s.t_first);
  // AMG is balanced: the busiest decile carries roughly its fair share.
  EXPECT_LT(s.top_decile_share, 0.25);

  const Trace amr = record("amr", 64, workload::generate_amr_boxlib(c));
  EXPECT_GT(summarize(amr).top_decile_share, 0.5);  // skewed by design
}

TEST(Trace, CorruptFilesRejected) {
  const std::string path = tmp_path("dv_trace_corrupt.dvtr");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTATRACE___garbage";
  }
  EXPECT_THROW(load_binary(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_binary("/nonexistent/path/x.dvtr"), Error);
}

TEST(Trace, ValidationCatchesBadMessages) {
  Trace t;
  t.app = "x";
  t.ranks = 4;
  t.messages.push_back({0, 9, 100, 0.0});  // dst out of range
  EXPECT_THROW(validate(t), Error);
  t.messages[0] = {0, 1, 0, 0.0};  // zero bytes
  EXPECT_THROW(validate(t), Error);
  t.messages[0] = {0, 1, 10, -5.0};  // negative time
  EXPECT_THROW(validate(t), Error);
  t.messages[0] = {0, 1, 10, 5.0};
  EXPECT_NO_THROW(validate(t));
}

}  // namespace
}  // namespace dv::trace
