// Fault-injection tests: spec parsing (incl. fuzzed round-trips), timeline
// semantics, netsim degradation (retries, drops, detours, recovery), the
// zero-fault identity property, and seq/parallel bit-equality under faults.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "json/json.hpp"
#include "netsim/network.hpp"
#include "util/rng.hpp"

namespace dv::fault {
namespace {

// ----------------------------------------------------------------- parsing

TEST(FaultSpec, ParsesExactLink) {
  const auto f = parse_fault("link:g2.r3->g5.r1@1.5e5:3.0e5");
  EXPECT_EQ(f.kind, FaultSpec::Kind::kLink);
  EXPECT_FALSE(f.group_level);
  EXPECT_EQ(f.src.group, 2u);
  EXPECT_EQ(f.src.rank, 3u);
  EXPECT_EQ(f.dst.group, 5u);
  EXPECT_EQ(f.dst.rank, 1u);
  EXPECT_DOUBLE_EQ(f.t_down, 1.5e5);
  EXPECT_DOUBLE_EQ(f.t_up, 3.0e5);
}

TEST(FaultSpec, ParsesGroupLevelLink) {
  const auto f = parse_fault("link:g0->g7@1000");
  EXPECT_EQ(f.kind, FaultSpec::Kind::kLink);
  EXPECT_TRUE(f.group_level);
  EXPECT_EQ(f.src.group, 0u);
  EXPECT_EQ(f.dst.group, 7u);
  EXPECT_DOUBLE_EQ(f.t_down, 1000.0);
  EXPECT_TRUE(std::isinf(f.t_up));  // never recovers
}

TEST(FaultSpec, ParsesRouter) {
  const auto f = parse_fault("  ROUTER:g4.r0@0:250.5  ");
  EXPECT_EQ(f.kind, FaultSpec::Kind::kRouter);
  EXPECT_EQ(f.src.group, 4u);
  EXPECT_EQ(f.src.rank, 0u);
  EXPECT_DOUBLE_EQ(f.t_down, 0.0);
  EXPECT_DOUBLE_EQ(f.t_up, 250.5);
}

TEST(FaultSpec, RejectsMalformed) {
  const char* bad[] = {
      "",
      "link",
      "link:g1->g2",            // no times
      "link:g1->g2@",           // empty time
      "link:g1->g2@abc",        // non-numeric time
      "link:g1->g2@5:4",        // t_up <= t_down
      "link:g1->g2@5:5",
      "link:g1->g1@5",          // same group, group-level
      "link:g1.r0->g1.r0@5",    // identical endpoints
      "link:g1.r0->g2@5",       // mixed endpoint forms
      "link:g1@5",              // no arrow
      "router:g1@5",            // router needs a rank
      "router:g1.r2@-5",        // negative time
      "router:g1.r2@inf",       // non-finite time
      "cable:g1.r2->g2.r0@5",   // unknown kind
      "link:x1->g2@5",          // endpoint must start with g
      "link:g1.s2->g2.r0@5",    // rank must be r<N>
      "link:g1.r2->g2.r0@5:6:7" // too many times
  };
  for (const char* s : bad) {
    EXPECT_THROW((void)parse_fault(s), Error) << s;
  }
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const char* specs[] = {
      "link:g2.r3->g5.r1@150000:300000",
      "link:g0->g7@1000",
      "router:g4.r0@0:250.5",
      "router:g1.r2@3.25e4",
  };
  for (const char* s : specs) {
    const auto f = parse_fault(s);
    EXPECT_EQ(parse_fault(to_string(f)), f) << s;
  }
}

TEST(FaultSpecFuzz, RandomValidSpecsRoundTrip) {
  Rng rng(20260806);
  for (int i = 0; i < 500; ++i) {
    FaultSpec f;
    const auto kind = rng.next_below(3);
    f.kind = kind == 0 ? FaultSpec::Kind::kRouter : FaultSpec::Kind::kLink;
    f.group_level = kind == 2;
    f.src.group = static_cast<std::uint32_t>(rng.next_below(100));
    f.src.rank = static_cast<std::uint32_t>(rng.next_below(100));
    if (f.kind == FaultSpec::Kind::kLink) {
      do {
        f.dst.group = static_cast<std::uint32_t>(rng.next_below(100));
        f.dst.rank = static_cast<std::uint32_t>(rng.next_below(100));
      } while (f.group_level ? f.dst.group == f.src.group
                             : (f.dst == f.src));
    }
    if (f.group_level) f.src.rank = f.dst.rank = 0;
    f.t_down = rng.next_double() * 1e6;
    if (rng.next_below(2)) f.t_up = f.t_down + 1.0 + rng.next_double() * 1e6;
    const auto g = parse_fault(to_string(f));
    EXPECT_EQ(g, f) << to_string(f);
  }
}

TEST(FaultSpecFuzz, MutatedSpecsNeverCrash) {
  Rng rng(7);
  const std::string base = "link:g2.r3->g5.r1@1.5e5:3.0e5";
  for (int i = 0; i < 2000; ++i) {
    std::string s = base;
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = rng.next_below(s.size());
      switch (rng.next_below(3)) {
        case 0: s[pos] = static_cast<char>(32 + rng.next_below(95)); break;
        case 1: s.erase(pos, 1); break;
        default:
          s.insert(pos, 1, static_cast<char>(32 + rng.next_below(95)));
      }
      if (s.empty()) s = "x";
    }
    try {
      const auto f = parse_fault(s);       // either parses...
      (void)to_string(f);
    } catch (const Error&) {               // ...or reports a clean error
    }
  }
}

TEST(FaultPlanParse, HandlesCommentsAndBlankLines) {
  const auto plan = FaultPlan::parse(
      "# outage scenario\n"
      "\n"
      "link:g0->g1@100:200   # transient cable fault\n"
      "router:g2.r1@50\n");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].kind, FaultSpec::Kind::kLink);
  EXPECT_EQ(plan.faults[1].kind, FaultSpec::Kind::kRouter);
  // to_string round-trips the whole plan.
  const auto again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.faults, plan.faults);
}

TEST(FaultPlanParse, LoadsFromFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "dv_fault_plan_test.txt")
          .string();
  {
    std::ofstream os(path);
    os << "router:g1.r1@10:20\nlink:g0->g2@5\n";
  }
  const auto plan = FaultPlan::load(path);
  EXPECT_EQ(plan.faults.size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW((void)FaultPlan::load("/nonexistent/fault/plan.txt"), Error);
}

// ----------------------------------------------------------------- timeline

TEST(FaultTimeline, HalfOpenIntervalSemantics) {
  const auto topo = topo::Dragonfly::canonical(2);
  const auto plan = FaultPlan::parse("router:g0.r0@100:200");
  const FaultTimeline tl(topo, plan);
  EXPECT_FALSE(tl.empty());
  EXPECT_EQ(tl.faults(), 1u);
  EXPECT_EQ(tl.entities(), 1u);
  EXPECT_FALSE(tl.router_down(0, 99.999));
  EXPECT_TRUE(tl.router_down(0, 100.0));   // down boundary is inclusive
  EXPECT_TRUE(tl.router_down(0, 199.999));
  EXPECT_FALSE(tl.router_down(0, 200.0));  // up boundary is exclusive
  EXPECT_FALSE(tl.router_down(1, 150.0));  // other routers unaffected
  EXPECT_DOUBLE_EQ(tl.router_downtime(0, 150.0), 50.0);   // clipped
  EXPECT_DOUBLE_EQ(tl.router_downtime(0, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(tl.router_downtime(1, 1000.0), 0.0);
}

TEST(FaultTimeline, MergesOverlappingIntervals) {
  const auto topo = topo::Dragonfly::canonical(2);
  const auto plan =
      FaultPlan::parse("router:g0.r0@100:200\nrouter:g0.r0@150:300");
  const FaultTimeline tl(topo, plan);
  EXPECT_TRUE(tl.router_down(0, 250.0));
  EXPECT_DOUBLE_EQ(tl.router_downtime(0, 1000.0), 200.0);  // union, not sum
}

TEST(FaultTimeline, PermanentFaultClipsToEnd) {
  const auto topo = topo::Dragonfly::canonical(2);
  const FaultTimeline tl(topo, FaultPlan::parse("router:g0.r1@500"));
  const std::uint32_t r = topo.router_id(0, 1);
  EXPECT_TRUE(tl.router_down(r, 1e18));
  EXPECT_DOUBLE_EQ(tl.router_downtime(r, 2000.0), 1500.0);
}

TEST(FaultTimeline, GroupLevelLinkResolvesToGroupExit) {
  const auto topo = topo::Dragonfly::canonical(2);
  const FaultTimeline tl(topo, FaultPlan::parse("link:g0->g1@10:20"));
  const auto ge = topo.group_exit(0, 1);
  const auto gid = topo.global_link_id(ge.router, ge.channel);
  EXPECT_TRUE(tl.global_link_down(gid, 15.0));
  EXPECT_FALSE(tl.global_link_down(gid, 25.0));
  EXPECT_DOUBLE_EQ(tl.global_link_downtime(gid, 100.0), 10.0);
}

TEST(FaultTimeline, EffectiveLinkDowntimeUnionsEndpointRouters) {
  const auto topo = topo::Dragonfly::canonical(2);
  // The local link g0.r0 -> g0.r1 plus downtime of its source router.
  const auto plan =
      FaultPlan::parse("link:g0.r0->g0.r1@0:100\nrouter:g0.r0@50:150");
  const FaultTimeline tl(topo, plan);
  const std::uint32_t nterm = topo.terminals_per_router();
  const auto lid = topo.local_link_id(0, topo.local_port(0, 1) - nterm);
  EXPECT_DOUBLE_EQ(tl.local_link_downtime(lid, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(tl.effective_link_downtime(false, lid, 0, 1, 1000.0),
                   150.0);
}

TEST(FaultTimeline, WakesAreSortedUniqueAndFinite) {
  const auto topo = topo::Dragonfly::canonical(2);
  const auto plan = FaultPlan::parse(
      "router:g0.r0@100:200\nlink:g0->g1@100:200\nrouter:g1.r1@50");
  const FaultTimeline tl(topo, plan);
  const auto& wakes = tl.wakes();
  ASSERT_FALSE(wakes.empty());
  for (std::size_t i = 0; i < wakes.size(); ++i) {
    EXPECT_TRUE(std::isfinite(wakes[i].second));
    if (i) {
      EXPECT_LT(wakes[i - 1], wakes[i]);  // strictly increasing pairs
    }
  }
}

TEST(FaultTimeline, RejectsOutOfTopologyAndMissingLinks) {
  const auto topo = topo::Dragonfly::canonical(2);  // 9 groups, 4 ranks
  EXPECT_THROW(FaultTimeline(topo, FaultPlan::parse("router:g9.r0@5")),
               Error);
  EXPECT_THROW(FaultTimeline(topo, FaultPlan::parse("router:g0.r4@5")),
               Error);
  EXPECT_THROW(FaultTimeline(topo, FaultPlan::parse("link:g0->g9@5")), Error);
  // g0.r0 has h=2 global channels; most cross-group router pairs share no
  // cable, and naming one of those must fail loudly.
  bool threw = false;
  try {
    FaultTimeline(topo, FaultPlan::parse("link:g0.r0->g5.r3@5"));
  } catch (const Error&) {
    threw = true;
  }
  const auto ge0 = topo.global_neighbor(0, 0);
  const auto ge1 = topo.global_neighbor(0, 1);
  const bool connected =
      ge0.router == topo.router_id(5, 3) || ge1.router == topo.router_id(5, 3);
  EXPECT_EQ(threw, !connected);
}

}  // namespace
}  // namespace dv::fault

namespace dv::netsim {
namespace {

Params fault_test_params() {
  Params p;
  p.packet_size = 512;
  p.event_budget = 50'000'000;
  return p;
}

/// Uniform-random message soup over the first `window` ns.
void add_soup(Network& net, std::uint64_t seed, int count, double window) {
  const auto& topo = net.topology();
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const auto src =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    net.add_message({src, dst, 100 + rng.next_below(4000),
                     rng.next_double() * window, 0});
  }
}

std::string dump(const metrics::RunMetrics& m) {
  return json::dump(m.to_json());
}

TEST(FaultNetsim, EmptyPlanIsBitIdenticalToNoPlan) {
  const auto topo = topo::Dragonfly::canonical(2);
  auto build = [&](bool with_empty_plan) {
    auto net = std::make_unique<Network>(topo, routing::Algo::kAdaptive,
                                         fault_test_params(), 5);
    add_soup(*net, 17, 250, 10000.0);
    if (with_empty_plan) net->set_fault_plan(fault::FaultPlan{});
    return net;
  };
  const auto a = build(false)->run();
  const auto b = build(true)->run();
  EXPECT_EQ(dump(a), dump(b));
  // The healthy run reports no fault activity anywhere.
  EXPECT_TRUE(b.router_downtime.empty());
  for (const auto& l : b.global_links) {
    EXPECT_EQ(l.retries, 0u);
    EXPECT_EQ(l.pkts_dropped, 0u);
    EXPECT_DOUBLE_EQ(l.downtime, 0.0);
  }
}

TEST(FaultNetsim, MinimalDetoursAroundDeadGroupCable) {
  const auto topo = topo::Dragonfly::canonical(2);
  Network net(topo, routing::Algo::kMinimal, fault_test_params(), 3);
  // Every message crosses the (dead) g0 -> g1 cable's minimal route.
  for (std::uint32_t i = 0; i < topo.terminals_per_router(); ++i) {
    net.add_message({i, topo.terminals_per_router() *
                            topo.routers_per_group() + i,
                     2048, 0.0, 0});
  }
  net.set_fault_plan(fault::FaultPlan::parse("link:g0->g1@0"));
  const auto m = net.run();
  // All packets delivered — via a Valiant detour, none dropped.
  EXPECT_EQ(net.packets_injected(), net.packets_delivered());
  std::uint64_t rerouted = 0, dropped = 0;
  for (const auto& t : m.terminals) {
    rerouted += t.packets_rerouted;
    dropped += t.packets_dropped;
  }
  EXPECT_GT(rerouted, 0u);
  EXPECT_EQ(dropped, 0u);
  // The dead cable carried nothing and reports its downtime.
  const auto ge = topo.group_exit(0, 1);
  const auto gid = topo.global_link_id(ge.router, ge.channel);
  EXPECT_DOUBLE_EQ(m.global_links[gid].traffic, 0.0);
  EXPECT_DOUBLE_EQ(m.global_links[gid].downtime, m.end_time);
}

TEST(FaultNetsim, PermanentlyDeadDestinationDropsAfterRetryBudget) {
  const auto topo = topo::Dragonfly::canonical(2);
  auto params = fault_test_params();
  params.fault_retry_budget = 3;
  Network net(topo, routing::Algo::kAdaptive, params, 9);
  // All traffic targets terminals of router g1.r0, which never comes up.
  const std::uint32_t dead = topo.router_id(1, 0);
  const std::uint32_t dst = topo.terminal_id(dead, 0);
  for (std::uint32_t i = 0; i < 8; ++i) {
    net.add_message({i, dst, 1024, 0.0, 0});
  }
  net.set_fault_plan(fault::FaultPlan::parse("router:g1.r0@0"));
  const auto m = net.run();
  EXPECT_GT(net.packets_injected(), 0u);
  EXPECT_EQ(net.packets_delivered(), 0u);
  std::uint64_t dropped = 0, retries = 0;
  for (const auto& t : m.terminals) dropped += t.packets_dropped;
  for (const auto c : m.router_retries) retries += c;
  EXPECT_EQ(dropped, net.packets_injected());  // conservation via drops
  EXPECT_GT(retries, 0u);
  // Drops are attributed to the terminals that sourced the packets.
  EXPECT_GT(m.terminals[0].packets_dropped, 0u);
  // The dead router reports full-run downtime.
  ASSERT_EQ(m.router_downtime.size(), topo.num_routers());
  EXPECT_DOUBLE_EQ(m.router_downtime[dead], m.end_time);
  EXPECT_DOUBLE_EQ(m.terminals[dst].downtime, m.end_time);
}

TEST(FaultNetsim, TransientRouterFaultRecovers) {
  const auto topo = topo::Dragonfly::canonical(2);
  auto params = fault_test_params();
  params.fault_retry_budget = 40;  // patient: survive the outage
  Network net(topo, routing::Algo::kMinimal, params, 4);
  // Source terminal hangs off the faulted router: injection stalls until
  // the router revives, then everything flows.
  const std::uint32_t src_router = topo.router_id(0, 0);
  const std::uint32_t src = topo.terminal_id(src_router, 0);
  net.add_message({src, topo.num_terminals() - 1, 4096, 0.0, 0});
  net.set_fault_plan(fault::FaultPlan::parse("router:g0.r0@0:50000"));
  const auto m = net.run();
  EXPECT_EQ(net.packets_injected(), net.packets_delivered());
  EXPECT_GT(m.end_time, 50000.0);  // nothing moved before recovery
  std::uint64_t dropped = 0;
  for (const auto& t : m.terminals) dropped += t.packets_dropped;
  EXPECT_EQ(dropped, 0u);
  EXPECT_DOUBLE_EQ(m.router_downtime[src_router], 50000.0);
}

// Seq vs parallel bit-equality under a mixed fault plan. The suite name
// matches *SeqParEquivalence* so the CI thread-sanitizer leg picks it up.
struct FaultEquivParam {
  std::uint32_t p;
  routing::Algo algo;
  std::uint32_t partitions;
};

class FaultSeqParEquivalence
    : public ::testing::TestWithParam<FaultEquivParam> {};

TEST_P(FaultSeqParEquivalence, RunMetricsBitIdentical) {
  const auto [p, algo, partitions] = GetParam();
  const auto plan = fault::FaultPlan::parse(
      "link:g0->g1@5000:40000\n"
      "router:g2.r1@10000:60000\n"
      "router:g3.r0@20000\n");  // never recovers => real drops
  auto build = [&](std::uint32_t workers) {
    const auto topo = topo::Dragonfly::canonical(p);
    auto net = std::make_unique<Network>(topo, algo, fault_test_params(), 11);
    add_soup(*net, 42, 400, 20000.0);
    net->set_fault_plan(plan);
    net->set_parallel(workers);
    return net;
  };
  auto seq = build(1);
  auto par = build(partitions);
  const auto ms = seq->run();
  const auto mp = par->run();
  EXPECT_GT(par->partitions_used(), 1u);
  EXPECT_EQ(dump(ms), dump(mp));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, FaultSeqParEquivalence,
    ::testing::Values(FaultEquivParam{2, routing::Algo::kMinimal, 4},
                      FaultEquivParam{2, routing::Algo::kNonMinimal, 4},
                      FaultEquivParam{2, routing::Algo::kAdaptive, 4},
                      FaultEquivParam{2, routing::Algo::kProgressiveAdaptive, 4},
                      FaultEquivParam{3, routing::Algo::kAdaptive, 3},
                      FaultEquivParam{3, routing::Algo::kMinimal, 2}));

TEST(FaultNetsim, SetFaultPlanRejectedAfterRun) {
  const auto topo = topo::Dragonfly::canonical(2);
  Network net(topo, routing::Algo::kMinimal, fault_test_params(), 1);
  net.add_message({0, 1, 512, 0.0, 0});
  (void)net.run();
  EXPECT_THROW(net.set_fault_plan(fault::FaultPlan::parse("router:g0.r0@0")),
               Error);
}

}  // namespace
}  // namespace dv::netsim
