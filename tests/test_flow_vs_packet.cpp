// Differential cross-validation of the flow backend against the packet
// simulator on the paper's Fig. 7 synthetic scenarios: identical metrics
// schema, matching saturation ordering between scenarios, rank-correlated
// per-link load, and byte-identical view plumbing over either backend.
#include <gtest/gtest.h>

#include <vector>

#include "app/runner.hpp"
#include "core/datatable.hpp"
#include "core/presets.hpp"
#include "core/projection.hpp"
#include "util/stats.hpp"

namespace dv::app {
namespace {

/// Fig. 7 scale: canonical p=3 dragonfly (342 terminals), small volumes so
/// the packet reference stays fast in debug/sanitizer builds.
ExperimentConfig base_config(Backend backend, const std::string& workload) {
  ExperimentConfig cfg;
  cfg.dragonfly_p = 3;
  JobSpec job;
  job.workload = workload;
  cfg.jobs.push_back(job);
  cfg.routing = routing::Algo::kAdaptive;
  cfg.window = 1.0e5;
  cfg.synthetic_bytes_per_rank = 16 * 1024;
  cfg.seed = 5;
  cfg.backend = backend;
  return cfg;
}

metrics::RunMetrics run_one(Backend backend, const std::string& workload) {
  auto cfg = base_config(backend, workload);
  return run_experiment(cfg).run;
}

/// Per-link traffic over both link classes, in id order.
std::vector<double> link_traffic(const metrics::RunMetrics& run) {
  std::vector<double> v;
  v.reserve(run.local_links.size() + run.global_links.size());
  for (const auto& l : run.local_links) v.push_back(l.traffic);
  for (const auto& l : run.global_links) v.push_back(l.traffic);
  return v;
}

/// Peak per-link saturated time — the scalar the paper's Fig. 7 colour
/// scale encodes (how long the busiest link was at capacity).
double peak_link_sat(const metrics::RunMetrics& run) {
  double peak = 0.0;
  for (const auto& l : run.local_links) peak = std::max(peak, l.sat_time);
  for (const auto& l : run.global_links) peak = std::max(peak, l.sat_time);
  return peak;
}

TEST(FlowVsPacket, RunMetricsSchemaIsIdentical) {
  const auto flow = run_one(Backend::kFlow, "uniform_random");
  const auto packet = run_one(Backend::kPacket, "uniform_random");

  // Topology echo and labels.
  EXPECT_EQ(flow.groups, packet.groups);
  EXPECT_EQ(flow.routers_per_group, packet.routers_per_group);
  EXPECT_EQ(flow.terminals_per_router, packet.terminals_per_router);
  EXPECT_EQ(flow.global_per_router, packet.global_per_router);
  EXPECT_EQ(flow.workload, packet.workload);
  EXPECT_EQ(flow.routing, packet.routing);
  EXPECT_EQ(flow.placement, packet.placement);
  EXPECT_EQ(flow.job_names, packet.job_names);
  EXPECT_EQ(flow.seed, packet.seed);

  // Entity tables: same cardinality, same id wiring per row.
  ASSERT_EQ(flow.local_links.size(), packet.local_links.size());
  for (std::size_t i = 0; i < flow.local_links.size(); ++i) {
    EXPECT_EQ(flow.local_links[i].src_router, packet.local_links[i].src_router);
    EXPECT_EQ(flow.local_links[i].src_port, packet.local_links[i].src_port);
    EXPECT_EQ(flow.local_links[i].dst_router, packet.local_links[i].dst_router);
    EXPECT_EQ(flow.local_links[i].dst_port, packet.local_links[i].dst_port);
  }
  ASSERT_EQ(flow.global_links.size(), packet.global_links.size());
  for (std::size_t i = 0; i < flow.global_links.size(); ++i) {
    EXPECT_EQ(flow.global_links[i].src_router, packet.global_links[i].src_router);
    EXPECT_EQ(flow.global_links[i].src_port, packet.global_links[i].src_port);
    EXPECT_EQ(flow.global_links[i].dst_router, packet.global_links[i].dst_router);
    EXPECT_EQ(flow.global_links[i].dst_port, packet.global_links[i].dst_port);
  }
  ASSERT_EQ(flow.terminals.size(), packet.terminals.size());
  for (std::size_t i = 0; i < flow.terminals.size(); ++i) {
    EXPECT_EQ(flow.terminals[i].router, packet.terminals[i].router);
    EXPECT_EQ(flow.terminals[i].port, packet.terminals[i].port);
    EXPECT_EQ(flow.terminals[i].job, packet.terminals[i].job);
  }

  // Both backends inject the exact same workload bytes.
  EXPECT_DOUBLE_EQ(flow.total_injected(), packet.total_injected());
  EXPECT_EQ(flow.total_packets_finished(), packet.total_packets_finished());

  // The VA substrate sees identical column schemas per entity class.
  const core::DataSet fds(flow), pds(packet);
  for (const auto e : {core::Entity::kRouter, core::Entity::kLocalLink,
                       core::Entity::kGlobalLink, core::Entity::kTerminal}) {
    EXPECT_EQ(fds.table(e).column_names(), pds.table(e).column_names())
        << to_string(e);
    EXPECT_EQ(fds.table(e).rows(), pds.table(e).rows()) << to_string(e);
  }
}

TEST(FlowVsPacket, SaturationOrderingMatchesOnFig7Scenarios) {
  // Fig. 7's contrast: stride-p nearest neighbour concentrates every
  // router's flows onto few links (congestion-forming); uniform random
  // spreads them. Under minimal routing and heavy load (12x, past link
  // capacity) the backends must agree which scenario is more congested
  // AND which finishes later, even though absolute numbers differ.
  auto congested = [](Backend backend, const std::string& workload) {
    auto cfg = base_config(backend, workload);
    cfg.routing = routing::Algo::kMinimal;
    cfg.traffic_scale = 12.0;
    return run_experiment(cfg).run;
  };
  const auto flow_nn = congested(Backend::kFlow, "nearest_neighbor");
  const auto flow_ur = congested(Backend::kFlow, "uniform_random");
  const auto pkt_nn = congested(Backend::kPacket, "nearest_neighbor");
  const auto pkt_ur = congested(Backend::kPacket, "uniform_random");

  // Saturation ordering (with margin: NN's hot links stay saturated for
  // several times longer than UR's busiest link in both models).
  EXPECT_GT(peak_link_sat(flow_nn), 2.0 * peak_link_sat(flow_ur));
  EXPECT_GT(peak_link_sat(pkt_nn), 2.0 * peak_link_sat(pkt_ur));
  // The congested scenario also drains later in both models.
  EXPECT_GT(flow_nn.end_time, flow_ur.end_time);
  EXPECT_GT(pkt_nn.end_time, pkt_ur.end_time);
}

TEST(FlowVsPacket, LinkLoadRankCorrelates) {
  for (const char* workload : {"nearest_neighbor", "uniform_random"}) {
    const auto flow = link_traffic(run_one(Backend::kFlow, workload));
    const auto packet = link_traffic(run_one(Backend::kPacket, workload));
    ASSERT_EQ(flow.size(), packet.size());
    // Fluid rates ignore transient queueing, so we validate the *ordering*
    // of link loads, not their magnitudes.
    EXPECT_GE(spearman(flow, packet), 0.6) << workload;
  }
}

TEST(FlowVsPacket, FlowOnlyOptionsAreValidatedPerBackend) {
  // --flow-coarsen silently doing nothing on the packet backend would
  // invite apples-to-oranges comparisons; the runner must reject it.
  auto cfg = base_config(Backend::kPacket, "uniform_random");
  cfg.flow_coarsen = true;
  EXPECT_THROW(run_experiment(cfg), Error);
  // Unknown stepping names fail loudly instead of falling back to event.
  cfg = base_config(Backend::kFlow, "uniform_random");
  cfg.flow_stepping = "quantum";
  EXPECT_THROW(run_experiment(cfg), Error);
  // The same options are accepted where they mean something.
  cfg = base_config(Backend::kFlow, "uniform_random");
  cfg.flow_coarsen = true;
  cfg.flow_stepping = "fixed";
  EXPECT_GT(run_experiment(cfg).run.total_injected(), 0.0);
}

TEST(FlowVsPacket, SolverTelemetryIsPopulatedOnlyByTheFlowBackend) {
  const auto flow = run_experiment(base_config(Backend::kFlow,
                                               "uniform_random"));
  EXPECT_GT(flow.flow.epochs, 0u);
  EXPECT_GT(flow.flow.solves, 0u);
  EXPECT_EQ(flow.flow.solves,
            flow.flow.full_solves + flow.flow.incremental_solves);
  EXPECT_GT(flow.flow.solver_rounds, 0u);
  EXPECT_GT(flow.flow.drain_events, 0u);

  const auto packet = run_experiment(base_config(Backend::kPacket,
                                                 "uniform_random"));
  EXPECT_EQ(packet.flow.epochs, 0u);
  EXPECT_EQ(packet.flow.solves, 0u);
  EXPECT_EQ(packet.flow.solver_rounds, 0u);
  EXPECT_EQ(packet.flow.drain_events, 0u);
}

TEST(FlowVsPacket, ViewPlumbingIsByteIdenticalPerBackend) {
  // The same spec machinery must run unchanged over either backend's run
  // and render deterministically (two builds -> identical SVG bytes).
  const auto spec = core::preset("overview");
  for (const auto backend : {Backend::kFlow, Backend::kPacket}) {
    const auto run = run_one(backend, "uniform_random");
    const core::DataSet ds(run);
    const core::ProjectionView a(ds, spec);
    const core::ProjectionView b(ds, spec);
    ASSERT_FALSE(a.rings().empty());
    EXPECT_EQ(a.to_svg(640, "t"), b.to_svg(640, "t"));
  }
}

}  // namespace
}  // namespace dv::app
