// Matrix-view baseline tests.
#include <gtest/gtest.h>

#include "core/matrix_view.hpp"
#include "helpers.hpp"

namespace dv::core {
namespace {

TEST(MatrixView, RouterMatrixSumsTraffic) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const MatrixView m(data, Entity::kLocalLink, "router");
  EXPECT_EQ(m.dim(), mini.topo.num_routers());
  EXPECT_EQ(m.visual_items(), m.dim() * m.dim());
  double total = 0;
  for (std::size_t i = 0; i < m.dim(); ++i) {
    for (std::size_t j = 0; j < m.dim(); ++j) total += m.at(i, j);
  }
  EXPECT_NEAR(total, mini.run.total_local_traffic(), total * 1e-9);
  // Diagonal is empty (no self links).
  for (std::size_t i = 0; i < m.dim(); ++i) EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
}

TEST(MatrixView, GroupMatrixFromGlobalLinks) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const MatrixView m(data, Entity::kGlobalLink, "group");
  EXPECT_EQ(m.dim(), mini.topo.groups());
  double total = 0;
  for (std::size_t i = 0; i < m.dim(); ++i) {
    for (std::size_t j = 0; j < m.dim(); ++j) total += m.at(i, j);
  }
  EXPECT_NEAR(total, mini.run.total_global_traffic(), total * 1e-9);
}

TEST(MatrixView, RendersSmallRefusesLarge) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const MatrixView m(data, Entity::kLocalLink, "router");
  const auto svg = m.to_svg(400, "matrix");
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_THROW(m.to_svg(400, "", /*max_render_dim=*/8), Error);
}

TEST(MatrixView, Validation) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  EXPECT_THROW(MatrixView(data, Entity::kTerminal, "router"), Error);
  EXPECT_THROW(MatrixView(data, Entity::kLocalLink, "bogus"), Error);
  const MatrixView m(data, Entity::kLocalLink, "router");
  EXPECT_THROW(m.at(m.dim(), 0), Error);
}

}  // namespace
}  // namespace dv::core
