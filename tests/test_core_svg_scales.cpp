// SVG primitive and scale tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/scales.hpp"
#include "core/svg.hpp"

namespace dv::core {
namespace {

TEST(Scales, LinearNormClamps) {
  const LinearScale s(10.0, 20.0);
  EXPECT_DOUBLE_EQ(s.norm(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.norm(20.0), 1.0);
  EXPECT_DOUBLE_EQ(s.norm(15.0), 0.5);
  EXPECT_DOUBLE_EQ(s.norm(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.norm(100.0), 1.0);
}

TEST(Scales, DegenerateDomainIsZero) {
  LinearScale s;
  EXPECT_DOUBLE_EQ(s.norm(5.0), 0.0);  // invalid
  s.include(3.0);
  EXPECT_DOUBLE_EQ(s.norm(3.0), 0.0);  // single point
}

TEST(Scales, IncludeAndMerge) {
  LinearScale a;
  a.include(5.0);
  a.include(1.0);
  EXPECT_DOUBLE_EQ(a.lo(), 1.0);
  EXPECT_DOUBLE_EQ(a.hi(), 5.0);
  LinearScale b(4.0, 9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.hi(), 9.0);
  EXPECT_THROW(LinearScale(2.0, 1.0), Error);
}

TEST(Scales, ScaleSetMergeIsUnion) {
  ScaleSet s1, s2;
  s1.get_or_add("x").include(0.0);
  s1.get_or_add("x").include(10.0);
  s2.get_or_add("x").include(50.0);
  s2.get_or_add("y").include(7.0);
  s1.merge(s2);
  EXPECT_DOUBLE_EQ(s1.at("x").hi(), 50.0);
  EXPECT_TRUE(s1.has("y"));
  EXPECT_THROW(s1.at("z"), Error);
}

TEST(Svg, PrimitivesAppearInOutput) {
  SvgDocument doc(100, 100);
  doc.rect(1, 2, 3, 4, Style::filled(Rgb{255, 0, 0}));
  doc.circle(10, 10, 5, Style::stroked(Rgb{0, 0, 255}, 2.0));
  doc.line({0, 0}, {10, 10}, Style::stroked(Rgb{0, 0, 0}));
  doc.polyline({{0, 0}, {1, 1}, {2, 0}}, Style::stroked(Rgb{0, 128, 0}));
  doc.text(5, 5, "a<b&c", 10, Rgb{0, 0, 0});
  doc.ring_sector(50, 50, 10, 20, 0.0, 1.0, Style::filled(Rgb{1, 2, 3}));
  doc.ribbon(50, 50, 30, 0.0, 0.3, 2.0, 2.3, Style::filled(Rgb{9, 9, 9}));
  const std::string out = doc.str();
  EXPECT_EQ(doc.element_count(), 7u);
  EXPECT_NE(out.find("<rect"), std::string::npos);
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find("fill=\"#ff0000\""), std::string::npos);
  EXPECT_NE(out.find("stroke=\"#0000ff\""), std::string::npos);
  EXPECT_NE(out.find("a&lt;b&amp;c"), std::string::npos);  // escaped text
  EXPECT_NE(out.find("viewBox=\"0 0 100 100\""), std::string::npos);
}

TEST(Svg, GroupsMustBalance) {
  SvgDocument doc(10, 10);
  doc.begin_group("g1");
  EXPECT_THROW(doc.str(), Error);  // unclosed
  doc.end_group();
  EXPECT_NO_THROW(doc.str());
  EXPECT_THROW(doc.end_group(), Error);
}

TEST(Svg, AlphaChannelsSerialized) {
  SvgDocument doc(10, 10);
  doc.rect(0, 0, 1, 1, Style::filled(Rgb{10, 20, 30, 128}));
  EXPECT_NE(doc.str().find("fill-opacity"), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  SvgDocument doc(10, 10);
  doc.circle(5, 5, 2, Style::filled(Rgb{0, 0, 0}));
  const auto path =
      (std::filesystem::temp_directory_path() / "dv_svg_test.svg").string();
  doc.save(path);
  EXPECT_GT(std::filesystem::file_size(path), 50u);
  std::filesystem::remove(path);
  EXPECT_THROW(doc.save("/nonexistent/dir/x.svg"), Error);
}

TEST(Svg, InvalidGeometryThrows) {
  EXPECT_THROW(SvgDocument(0, 10), Error);
  SvgDocument doc(10, 10);
  EXPECT_THROW(doc.ring_sector(0, 0, 5, 2, 0, 1, Style{}), Error);
}

}  // namespace
}  // namespace dv::core
