// Cross-run comparison tests: shared scales, side-by-side render, job
// summaries (the machinery behind Figs. 8, 9, 13).
#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "helpers.hpp"

namespace dv::core {
namespace {

ProjectionSpec spec() {
  return SpecBuilder()
      .level(Entity::kGlobalLink)
      .aggregate({"router_rank"})
      .color("sat_time")
      .size("traffic")
      .level(Entity::kTerminal)
      .aggregate({"router_rank"})
      .color("avg_latency")
      .ribbons(Entity::kGlobalLink, "group_id")
      .build();
}

TEST(Comparison, SharedScaleIsUnionOfRuns) {
  const auto run_min = dv::testing::make_mini_run(routing::Algo::kMinimal);
  const auto run_adp = dv::testing::make_mini_run(routing::Algo::kAdaptive);
  const DataSet d1(run_min.run), d2(run_adp.run);
  const ComparisonView cmp({&d1, &d2}, spec());
  ASSERT_EQ(cmp.run_count(), 2u);

  const auto s1 = ProjectionView::compute_scales(d1, spec());
  const auto s2 = ProjectionView::compute_scales(d2, spec());
  const auto& shared = cmp.shared_scales();
  EXPECT_DOUBLE_EQ(shared.at("L0/size").hi(),
                   std::max(s1.at("L0/size").hi(), s2.at("L0/size").hi()));
  EXPECT_DOUBLE_EQ(shared.at("L0/size").lo(),
                   std::min(s1.at("L0/size").lo(), s2.at("L0/size").lo()));
}

TEST(Comparison, SameValueSameEncodingAcrossRuns) {
  // The point of shared scales: identical raw values must normalize
  // identically in both panels.
  const auto run_min = dv::testing::make_mini_run(routing::Algo::kMinimal);
  const auto run_adp = dv::testing::make_mini_run(routing::Algo::kAdaptive);
  const DataSet d1(run_min.run), d2(run_adp.run);
  const ComparisonView cmp({&d1, &d2}, spec());
  const auto& shared = cmp.shared_scales();
  for (std::size_t r = 0; r < 2; ++r) {
    for (const auto& it : cmp.view(r).rings()[0].items) {
      EXPECT_DOUBLE_EQ(it.size_t_, shared.at("L0/size").norm(it.size_value));
    }
  }
}

TEST(Comparison, LabelsDefaultFromRunMetadata) {
  const auto run = dv::testing::make_mini_run();
  const DataSet d(run.run);
  const ComparisonView cmp({&d}, spec());
  EXPECT_NE(cmp.label(0).find("mixed"), std::string::npos);
  EXPECT_NE(cmp.label(0).find("adaptive"), std::string::npos);
}

TEST(Comparison, SideBySideSvg) {
  const auto run_min = dv::testing::make_mini_run(routing::Algo::kMinimal);
  const auto run_adp = dv::testing::make_mini_run(routing::Algo::kAdaptive);
  const DataSet d1(run_min.run), d2(run_adp.run);
  const ComparisonView cmp({&d1, &d2}, spec(), {"Minimal", "Adaptive"});
  const auto svg = cmp.to_svg(300);
  EXPECT_NE(svg.find("Minimal"), std::string::npos);
  EXPECT_NE(svg.find("Adaptive"), std::string::npos);
  EXPECT_NE(svg.find("width=\"600\""), std::string::npos);
}

TEST(Comparison, JobSummaries) {
  const auto run = dv::testing::make_mini_run();
  const DataSet d(run.run);
  const auto summaries = summarize_jobs(d);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "nn_job");
  EXPECT_EQ(summaries[1].name, "ur_job");
  for (const auto& s : summaries) {
    EXPECT_EQ(s.terminals, 12u);
    EXPECT_GT(s.data_size, 0.0);
    EXPECT_GT(s.avg_latency, 0.0);
    EXPECT_GT(s.avg_hops, 0.0);
  }
  // Weighted-average identity: job latency equals total latency / packets.
  double lat = 0, pkts = 0;
  for (const auto& t : run.run.terminals) {
    if (t.job == 0) {
      lat += t.sum_latency;
      pkts += static_cast<double>(t.packets_finished);
    }
  }
  EXPECT_NEAR(summaries[0].avg_latency, lat / pkts, 1e-9);
}

TEST(Comparison, EmptyRunListThrows) {
  EXPECT_THROW(ComparisonView({}, spec()), Error);
}

}  // namespace
}  // namespace dv::core
