// Topology invariants: Dragonfly (parameterized over the canonical family,
// including the paper's three scales), Fat Tree, and Slim Fly.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "topology/dragonfly.hpp"
#include "topology/fattree.hpp"
#include "topology/slimfly.hpp"

namespace dv::topo {
namespace {

// ------------------------------------------------------------- Dragonfly

class CanonicalDragonfly : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CanonicalDragonfly, SizesMatchFormulae) {
  const std::uint32_t p = GetParam();
  const Dragonfly net = Dragonfly::canonical(p);
  EXPECT_EQ(net.routers_per_group(), 2 * p);
  EXPECT_EQ(net.global_per_router(), p);
  EXPECT_EQ(net.groups(), 2 * p * p + 1);
  EXPECT_EQ(net.num_terminals(), net.num_routers() * p);
  EXPECT_EQ(net.num_local_links(), net.num_routers() * (2 * p - 1));
  EXPECT_EQ(net.num_global_links(), net.num_routers() * p);
}

TEST_P(CanonicalDragonfly, GlobalWiringIsAnInvolution) {
  const Dragonfly net = Dragonfly::canonical(GetParam());
  for (std::uint32_t r = 0; r < net.num_routers(); ++r) {
    for (std::uint32_t c = 0; c < net.global_per_router(); ++c) {
      const GlobalEnd peer = net.global_neighbor(r, c);
      EXPECT_NE(net.router_group(peer.router), net.router_group(r));
      const GlobalEnd back = net.global_neighbor(peer.router, peer.channel);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.channel, c);
    }
  }
}

TEST_P(CanonicalDragonfly, EveryGroupPairHasExactlyOneLink) {
  const Dragonfly net = Dragonfly::canonical(GetParam());
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> count;
  for (std::uint32_t r = 0; r < net.num_routers(); ++r) {
    for (std::uint32_t c = 0; c < net.global_per_router(); ++c) {
      const GlobalEnd peer = net.global_neighbor(r, c);
      ++count[{net.router_group(r), net.router_group(peer.router)}];
    }
  }
  for (std::uint32_t g1 = 0; g1 < net.groups(); ++g1) {
    for (std::uint32_t g2 = 0; g2 < net.groups(); ++g2) {
      if (g1 == g2) continue;
      EXPECT_EQ((count[{g1, g2}]), 1) << "groups " << g1 << "->" << g2;
    }
  }
}

TEST_P(CanonicalDragonfly, GroupExitMatchesWiring) {
  const Dragonfly net = Dragonfly::canonical(GetParam());
  for (std::uint32_t g1 = 0; g1 < net.groups(); ++g1) {
    for (std::uint32_t g2 = 0; g2 < net.groups(); ++g2) {
      if (g1 == g2) continue;
      const GlobalEnd exit = net.group_exit(g1, g2);
      EXPECT_EQ(net.router_group(exit.router), g1);
      const GlobalEnd entry = net.global_neighbor(exit.router, exit.channel);
      EXPECT_EQ(net.router_group(entry.router), g2);
    }
  }
}

TEST_P(CanonicalDragonfly, LocalPortsAreConsistent) {
  const Dragonfly net = Dragonfly::canonical(GetParam());
  const std::uint32_t a = net.routers_per_group();
  for (std::uint32_t r1 = 0; r1 < a; ++r1) {
    std::set<std::uint32_t> ports;
    for (std::uint32_t r2 = 0; r2 < a; ++r2) {
      if (r1 == r2) continue;
      const std::uint32_t port = net.local_port(r1, r2);
      ports.insert(port);
      EXPECT_EQ(net.local_neighbor(r1, port - net.terminals_per_router()),
                r2);
    }
    EXPECT_EQ(ports.size(), a - 1);  // all distinct
  }
}

TEST_P(CanonicalDragonfly, MinimalHopsBounds) {
  const Dragonfly net = Dragonfly::canonical(GetParam());
  // Same router.
  EXPECT_EQ(net.minimal_router_hops(0, 1 % net.terminals_per_router()),
            net.terminals_per_router() > 1 ? 1u : 1u);
  // Spot-check a sample of pairs: 1..4 routers on the path.
  const std::uint32_t n = net.num_terminals();
  for (std::uint32_t s = 0; s < n; s += std::max(1u, n / 37)) {
    for (std::uint32_t d = 0; d < n; d += std::max(1u, n / 41)) {
      if (s == d) continue;
      const std::uint32_t h = net.minimal_router_hops(s, d);
      EXPECT_GE(h, 1u);
      EXPECT_LE(h, 4u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CanonicalFamily, CanonicalDragonfly,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(Dragonfly, PaperScales) {
  // The paper's three networks are the canonical p = 5, 6, 7 dragonflies.
  EXPECT_EQ(Dragonfly::canonical(5).num_terminals(), 2550u);
  EXPECT_EQ(Dragonfly::canonical(6).num_terminals(), 5256u);
  EXPECT_EQ(Dragonfly::canonical(7).num_terminals(), 9702u);
  const Dragonfly df6 = Dragonfly::canonical(6);
  EXPECT_EQ(df6.groups(), 73u);
  EXPECT_EQ(df6.routers_per_group(), 12u);
  EXPECT_EQ(df6.terminals_per_router(), 6u);
}

TEST(Dragonfly, LinkIdRoundTrip) {
  const Dragonfly net = Dragonfly::canonical(3);
  for (std::uint32_t lid = 0; lid < net.num_local_links(); ++lid) {
    const auto [router, lport] = net.local_link_ends(lid);
    EXPECT_EQ(net.local_link_id(router, lport), lid);
  }
  for (std::uint32_t gid = 0; gid < net.num_global_links(); ++gid) {
    const GlobalEnd src = net.global_link_src(gid);
    EXPECT_EQ(net.global_link_id(src.router, src.channel), gid);
  }
}

TEST(Dragonfly, InvalidConfigsThrow) {
  EXPECT_THROW(Dragonfly(0, 4, 2, 2), Error);
  EXPECT_THROW(Dragonfly(5, 1, 2, 2), Error);
  EXPECT_THROW(Dragonfly(5, 4, 0, 1), Error);
  EXPECT_THROW(Dragonfly(10, 4, 2, 2), Error);  // a*h != g-1
  EXPECT_NO_THROW(Dragonfly(9, 4, 2, 2));       // a*h == 8 == g-1
}

TEST(Dragonfly, OutOfRangeQueriesThrow) {
  const Dragonfly net = Dragonfly::canonical(2);
  EXPECT_THROW(net.router_id(net.groups(), 0), Error);
  EXPECT_THROW(net.local_port(0, 0), Error);
  EXPECT_THROW(net.group_exit(0, 0), Error);
  EXPECT_THROW(net.minimal_router_hops(0, net.num_terminals()), Error);
}

// ------------------------------------------------------------- Fat Tree

class FatTreeParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FatTreeParam, SizesMatchFormulae) {
  const std::uint32_t k = GetParam();
  const FatTree ft(k);
  EXPECT_EQ(ft.num_hosts(), k * k * k / 4);
  EXPECT_EQ(ft.num_switches(), 5 * k * k / 4);
  EXPECT_EQ(ft.num_core(), k * k / 4);
}

TEST_P(FatTreeParam, HopClasses) {
  const FatTree ft(GetParam());
  EXPECT_EQ(ft.minimal_switch_hops(0, 1 % ft.hosts_per_edge()), 1u);
  if (ft.num_hosts() > ft.hosts_per_edge()) {
    // Same pod, different edge.
    const std::uint32_t other_edge = ft.hosts_per_edge();
    if (ft.host_pod(other_edge) == 0) {
      EXPECT_EQ(ft.minimal_switch_hops(0, other_edge), 3u);
    }
    // Across pods.
    const std::uint32_t other_pod = ft.num_hosts() - 1;
    EXPECT_EQ(ft.minimal_switch_hops(0, other_pod), 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, FatTreeParam,
                         ::testing::Values(2u, 4u, 6u, 8u));

TEST(FatTree, OddArityThrows) { EXPECT_THROW(FatTree(3), Error); }

// ------------------------------------------------------------- Slim Fly

class SlimFlyParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlimFlyParam, DegreeIsUniform) {
  const SlimFly sf(GetParam());
  for (std::uint32_t r = 0; r < sf.num_routers(); ++r) {
    const auto nbrs = sf.neighbors(r);
    EXPECT_EQ(nbrs.size(), sf.network_degree());
    std::set<std::uint32_t> uniq(nbrs.begin(), nbrs.end());
    EXPECT_EQ(uniq.size(), nbrs.size());
    EXPECT_EQ(uniq.count(r), 0u);  // no self loop
  }
}

TEST_P(SlimFlyParam, AdjacencyIsSymmetric) {
  const SlimFly sf(GetParam());
  for (std::uint32_t r = 0; r < sf.num_routers(); ++r) {
    for (std::uint32_t nbr : sf.neighbors(r)) {
      EXPECT_TRUE(sf.connected(r, nbr));
      EXPECT_TRUE(sf.connected(nbr, r));
    }
  }
}

TEST_P(SlimFlyParam, DiameterIsTwo) {
  const SlimFly sf(GetParam());
  const std::uint32_t n = sf.num_routers();
  // BFS from a handful of sources; every MMS graph has diameter 2.
  for (std::uint32_t src = 0; src < n; src += std::max(1u, n / 7)) {
    std::vector<int> dist(n, -1);
    std::queue<std::uint32_t> q;
    dist[src] = 0;
    q.push(src);
    int max_d = 0;
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t v : sf.neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          max_d = std::max(max_d, dist[v]);
          q.push(v);
        }
      }
    }
    for (std::uint32_t v = 0; v < n; ++v) EXPECT_GE(dist[v], 0);
    EXPECT_LE(max_d, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(PrimeFields, SlimFlyParam,
                         ::testing::Values(5u, 13u, 17u));

TEST(SlimFly, RejectsBadField) {
  EXPECT_THROW(SlimFly(6), Error);   // not prime
  EXPECT_THROW(SlimFly(7), Error);   // 3 mod 4
  EXPECT_THROW(SlimFly(9), Error);   // prime power, not prime
}

TEST(SlimFly, GeneratorSetsPartitionUnits) {
  const SlimFly sf(13);
  EXPECT_EQ(sf.gen_x().size(), 6u);   // (q-1)/2 residues
  EXPECT_EQ(sf.gen_xp().size(), 6u);
  for (std::uint32_t v : sf.gen_x()) {
    // Closed under negation (q = 1 mod 4).
    const std::uint32_t neg = (13 - v) % 13;
    EXPECT_NE(std::find(sf.gen_x().begin(), sf.gen_x().end(), neg),
              sf.gen_x().end());
  }
}

}  // namespace
}  // namespace dv::topo
