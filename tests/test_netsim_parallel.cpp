// Sequential-vs-parallel engine equivalence for the Dragonfly netsim.
//
// The partitioned parallel engine must be a pure performance change: for
// execution-order-independent routing (minimal, Valiant) a run at any
// partition count reproduces the sequential reference bit for bit — same
// end time, same per-link traffic and saturation, same per-terminal
// latency sums, same sampled time series. Adaptive routing reads live
// queue depths, whose probe timing is engine-equivalent too (UGAL probes
// only the source router at injection; PAR probes the current router), so
// it is held to the same bit-exact standard here; if a future adaptive
// variant probes remote queues this file is where the contract relaxes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "fault/fault.hpp"
#include "netsim/network.hpp"
#include "workload/workload.hpp"

namespace dv::netsim {
namespace {

Params fast_params() {
  Params p;
  p.packet_size = 512;
  p.event_budget = 50'000'000;
  return p;
}

/// A mixed random + hotspot message load touching every group.
std::unique_ptr<Network> build_net(std::uint32_t dragonfly_p,
                                   routing::Algo algo, double sample_dt,
                                   std::uint32_t partitions) {
  const auto topo = topo::Dragonfly::canonical(dragonfly_p);
  auto net = std::make_unique<Network>(topo, algo, fast_params(), 42);
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const auto src =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    const std::uint64_t bytes = 100 + rng.next_below(4000);
    net->add_message({src, dst, bytes, rng.next_double() * 20000.0, 0});
  }
  // Hotspot: many senders into one terminal forces backpressure, which
  // exercises credit events crossing partition boundaries.
  for (std::uint32_t t = 1; t < std::min(10u, topo.num_terminals()); ++t) {
    net->add_message({t, 0, 4096, 100.0 * t, 1});
  }
  if (sample_dt > 0.0) net->enable_sampling(sample_dt);
  net->set_parallel(partitions);
  return net;
}

void expect_identical(const metrics::RunMetrics& a,
                      const metrics::RunMetrics& b) {
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.local_links.size(), b.local_links.size());
  for (std::size_t i = 0; i < a.local_links.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.local_links[i].traffic, b.local_links[i].traffic)
        << "local link " << i;
    EXPECT_DOUBLE_EQ(a.local_links[i].sat_time, b.local_links[i].sat_time)
        << "local link " << i;
  }
  ASSERT_EQ(a.global_links.size(), b.global_links.size());
  for (std::size_t i = 0; i < a.global_links.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.global_links[i].traffic, b.global_links[i].traffic)
        << "global link " << i;
    EXPECT_DOUBLE_EQ(a.global_links[i].sat_time, b.global_links[i].sat_time)
        << "global link " << i;
  }
  ASSERT_EQ(a.terminals.size(), b.terminals.size());
  for (std::size_t i = 0; i < a.terminals.size(); ++i) {
    EXPECT_EQ(a.terminals[i].packets_finished, b.terminals[i].packets_finished)
        << "terminal " << i;
    EXPECT_DOUBLE_EQ(a.terminals[i].sum_latency, b.terminals[i].sum_latency)
        << "terminal " << i;
    EXPECT_DOUBLE_EQ(a.terminals[i].sum_hops, b.terminals[i].sum_hops)
        << "terminal " << i;
    EXPECT_DOUBLE_EQ(a.terminals[i].data_size, b.terminals[i].data_size)
        << "terminal " << i;
    EXPECT_DOUBLE_EQ(a.terminals[i].sat_time, b.terminals[i].sat_time)
        << "terminal " << i;
  }
  ASSERT_EQ(a.has_time_series(), b.has_time_series());
  if (a.has_time_series()) {
    auto expect_series_eq = [](const metrics::SampledSeries& sa,
                               const metrics::SampledSeries& sb,
                               const char* label) {
      ASSERT_EQ(sa.frames(), sb.frames()) << label;
      ASSERT_EQ(sa.entities(), sb.entities()) << label;
      for (std::size_t f = 0; f < sa.frames(); ++f) {
        for (std::size_t i = 0; i < sa.entities(); ++i) {
          EXPECT_EQ(sa.at(f, i), sb.at(f, i))
              << label << " frame " << f << " entity " << i;
        }
      }
    };
    expect_series_eq(a.local_traffic_ts, b.local_traffic_ts, "local traffic");
    expect_series_eq(a.local_sat_ts, b.local_sat_ts, "local sat");
    expect_series_eq(a.global_traffic_ts, b.global_traffic_ts,
                     "global traffic");
    expect_series_eq(a.global_sat_ts, b.global_sat_ts, "global sat");
    expect_series_eq(a.term_traffic_ts, b.term_traffic_ts, "terminal traffic");
    expect_series_eq(a.term_sat_ts, b.term_sat_ts, "terminal sat");
  }
}

// (dragonfly p, routing algo, partitions, sampling dt)
using EquivParam = std::tuple<std::uint32_t, routing::Algo, std::uint32_t, double>;

class SeqParEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(SeqParEquivalence, RunMetricsBitIdentical) {
  const auto [p, algo, partitions, dt] = GetParam();
  auto seq = build_net(p, algo, dt, 1);
  auto par = build_net(p, algo, dt, partitions);
  const auto ms = seq->run();
  const auto mp = par->run();
  EXPECT_EQ(seq->partitions_used(), 1u);
  EXPECT_EQ(par->partitions_used(),
            std::min(partitions, topo::Dragonfly::canonical(p).groups()));
  expect_identical(ms, mp);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, SeqParEquivalence,
    ::testing::Values(
        // minimal / Valiant across scales and partition counts
        EquivParam{2, routing::Algo::kMinimal, 2, 0.0},
        EquivParam{2, routing::Algo::kMinimal, 4, 0.0},
        EquivParam{2, routing::Algo::kNonMinimal, 2, 0.0},
        EquivParam{2, routing::Algo::kNonMinimal, 4, 0.0},
        EquivParam{3, routing::Algo::kMinimal, 4, 0.0},
        EquivParam{3, routing::Algo::kNonMinimal, 4, 0.0},
        EquivParam{4, routing::Algo::kMinimal, 4, 0.0},
        EquivParam{4, routing::Algo::kNonMinimal, 2, 0.0},
        // adaptive probes are partition-local, so UGAL/PAR equalize too
        EquivParam{2, routing::Algo::kAdaptive, 4, 0.0},
        EquivParam{3, routing::Algo::kAdaptive, 2, 0.0},
        EquivParam{3, routing::Algo::kProgressiveAdaptive, 4, 0.0},
        // sampled runs: orchestrated sampling must tick identically
        EquivParam{2, routing::Algo::kMinimal, 4, 500.0},
        EquivParam{3, routing::Algo::kNonMinimal, 4, 1000.0},
        EquivParam{2, routing::Algo::kAdaptive, 2, 500.0}));

// --- workload sweep ----------------------------------------------------
// Structured traffic (uniform random, transpose, AMG halo bursts) and a
// faulted run, each checked for bit-identity at every partition count the
// topology-aware partitioner produces distinct cuts for.
class WorkloadSeqParEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {
};

TEST_P(WorkloadSeqParEquivalence, RunMetricsBitIdentical) {
  const auto& [name, partitions] = GetParam();
  const auto topo = topo::Dragonfly::canonical(2);
  const bool faulted = name == "faulted";
  workload::Config cfg;
  cfg.ranks = topo.num_terminals();
  cfg.total_bytes = 256 * 1024;
  cfg.window = 40000.0;
  cfg.seed = 11;
  cfg.msg_bytes = 2048;
  const auto msgs =
      workload::generate(faulted ? "uniform_random" : name, cfg);
  const auto build = [&](std::uint32_t nparts) {
    auto net = std::make_unique<Network>(topo, routing::Algo::kAdaptive,
                                         fast_params(), 42);
    for (const auto& m : msgs) {
      if (m.src_rank == m.dst_rank) continue;
      net->add_message({m.src_rank, m.dst_rank, m.bytes, m.time, 0});
    }
    if (faulted) {
      net->set_fault_plan(fault::FaultPlan::parse(
          "link:g0->g1@5000:40000\n"
          "router:g1.r1@10000:60000\n"));
    }
    net->set_parallel(nparts);
    return net;
  };
  auto seq = build(1);
  auto par = build(partitions);
  const auto ms = seq->run();
  const auto mp = par->run();
  EXPECT_EQ(par->partitions_used(), std::min(partitions, topo.groups()));
  expect_identical(ms, mp);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadSeqParEquivalence,
    ::testing::Combine(::testing::Values("uniform_random", "transpose", "amg",
                                         "faulted"),
                       ::testing::Values(2u, 3u, 4u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NetsimParallel, DeterministicAcrossParallelRuns) {
  const auto m1 = build_net(3, routing::Algo::kProgressiveAdaptive, 0.0, 4)->run();
  const auto m2 = build_net(3, routing::Algo::kProgressiveAdaptive, 0.0, 4)->run();
  expect_identical(m1, m2);
}

TEST(NetsimParallel, PartitionCountClampedToGroups) {
  const auto topo = topo::Dragonfly::canonical(2);
  auto net = build_net(2, routing::Algo::kMinimal, 0.0, 64);
  net->run();
  EXPECT_EQ(net->partitions_used(), topo.groups());
}

TEST(NetsimParallel, FlowConservationUnderParallelAdaptive) {
  auto net = build_net(3, routing::Algo::kAdaptive, 0.0, 4);
  const auto m = net->run();
  EXPECT_EQ(net->packets_injected(), net->packets_delivered());
  EXPECT_GT(m.end_time, 0.0);
  // Shape equivalence vs the sequential engine even if a future adaptive
  // variant stops being bit-exact: identical totals.
  auto seq = build_net(3, routing::Algo::kAdaptive, 0.0, 1);
  const auto ms = seq->run();
  EXPECT_DOUBLE_EQ(m.total_injected(), ms.total_injected());
  EXPECT_EQ(net->packets_delivered(), seq->packets_delivered());
}

TEST(NetsimParallel, LookaheadIsMinCrossPartitionDelay) {
  Params p = fast_params();
  p.credit_latency = 20.0;
  p.local_latency = 50.0;
  p.global_latency = 300.0;
  Network net(topo::Dragonfly::canonical(2), routing::Algo::kMinimal, p, 1);
  EXPECT_DOUBLE_EQ(net.lookahead(), 20.0);
}

}  // namespace
}  // namespace dv::netsim
