// Topology-aware partitioner: cut quality vs the naive striping baseline,
// soundness of the pairwise lookahead matrix, determinism, and balance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/partition.hpp"
#include "topology/fattree.hpp"

namespace dv::netsim {
namespace {

std::vector<ChannelEdge> df_graph(std::uint32_t p, const Params& params) {
  return dragonfly_channel_graph(topo::Dragonfly::canonical(p), params);
}

/// Switch-level fat-tree channel graph: every edge<->agg link within a pod
/// and every agg<->core uplink, both directions, uniform latency. Atom ids
/// are layered (edge | agg | core) since FatTree's per-layer ids overlap.
/// Pods are densely connected inside and only reach other pods through the
/// core, so a pod-respecting cut beats striping over raw switch ids.
std::vector<ChannelEdge> fattree_graph(const topo::FatTree& ft,
                                       double latency) {
  std::vector<ChannelEdge> edges;
  const std::uint32_t agg_base = ft.num_edge();
  const std::uint32_t core_base = ft.num_edge() + ft.num_agg();
  for (std::uint32_t pod = 0; pod < ft.pods(); ++pod) {
    for (std::uint32_t e = 0; e < ft.edge_per_pod(); ++e) {
      for (std::uint32_t a = 0; a < ft.agg_per_pod(); ++a) {
        const std::uint32_t eid = ft.edge_id(pod, e);
        const std::uint32_t aid = agg_base + ft.agg_id(pod, a);
        edges.push_back({eid, aid, 1.0, latency});
        edges.push_back({aid, eid, 1.0, latency});
      }
    }
    for (std::uint32_t a = 0; a < ft.agg_per_pod(); ++a) {
      const std::uint32_t aid = agg_base + ft.agg_id(pod, a);
      for (std::uint32_t up = 0; up < ft.k() / 2; ++up) {
        const std::uint32_t cid =
            core_base + ft.core_above(ft.agg_id(pod, a), up);
        edges.push_back({aid, cid, 1.0, latency});
        edges.push_back({cid, aid, 1.0, latency});
      }
    }
  }
  return edges;
}

TEST(NetsimPartition, CutNoWorseThanStripingOnDragonfly) {
  Params params;
  for (const std::uint32_t p : {3u, 5u}) {
    const auto topo = topo::Dragonfly::canonical(p);
    const auto edges = df_graph(p, params);
    for (const std::uint32_t parts : {2u, 3u, 4u}) {
      const auto plan = partition_channels(topo.groups(), parts, edges);
      const auto naive = stripe_partition(topo.groups(), parts, edges);
      EXPECT_LE(plan.cut_channels, naive.cut_channels)
          << "p=" << p << " parts=" << parts;
      EXPECT_LE(plan.cut_weight, naive.cut_weight + 1e-9)
          << "p=" << p << " parts=" << parts;
      EXPECT_EQ(plan.total_channels, naive.total_channels);
    }
  }
}

TEST(NetsimPartition, CutNoWorseThanStripingOnFatTree) {
  const topo::FatTree ft(4);
  const auto edges = fattree_graph(ft, 100.0);
  for (const std::uint32_t parts : {2u, 3u, 4u}) {
    const auto plan = partition_channels(ft.num_switches(), parts, edges);
    const auto naive = stripe_partition(ft.num_switches(), parts, edges);
    EXPECT_LE(plan.cut_channels, naive.cut_channels) << "parts=" << parts;
    EXPECT_LE(plan.cut_weight, naive.cut_weight + 1e-9) << "parts=" << parts;
  }
  // With 4 partitions the pod structure is discoverable: the optimized cut
  // must be strictly better than id striping, which splits pods.
  const auto plan = partition_channels(ft.num_switches(), 4, edges);
  const auto naive = stripe_partition(ft.num_switches(), 4, edges);
  EXPECT_LT(plan.cut_weight, naive.cut_weight);
}

TEST(NetsimPartition, MatrixLowerBoundsEveryCrossingChannel) {
  Params params;
  const auto topo = topo::Dragonfly::canonical(3);
  const auto edges = df_graph(3, params);
  for (const std::uint32_t parts : {2u, 4u}) {
    const auto plan = partition_channels(topo.groups(), parts, edges);
    for (const ChannelEdge& e : edges) {
      const std::uint32_t ps = plan.atom_partition[e.src];
      const std::uint32_t pd = plan.atom_partition[e.dst];
      if (ps == pd) continue;
      const double la = plan.pair_lookahead(ps, pd);
      EXPECT_GT(la, 0.0);
      EXPECT_LE(la, e.min_delay)
          << "pair (" << ps << "," << pd << ") lookahead must lower-bound "
          << "every channel crossing it";
    }
    // The canonical inter-group graph is complete, so every partition
    // pair is crossed by some cable and its credit return pins the
    // lookahead to the credit latency.
    for (std::uint32_t s = 0; s < parts; ++s) {
      for (std::uint32_t d = 0; d < parts; ++d) {
        if (s == d) continue;
        EXPECT_DOUBLE_EQ(plan.pair_lookahead(s, d), params.credit_latency);
      }
    }
  }
}

TEST(NetsimPartition, UnconnectedPairsAreUnreachable) {
  // Two disjoint 2-cliques: partitions along the component boundary have
  // no crossing channel, so their lookahead entry must be +infinity.
  const std::vector<ChannelEdge> edges = {
      {0, 1, 1.0, 10.0}, {1, 0, 1.0, 10.0},
      {2, 3, 1.0, 10.0}, {3, 2, 1.0, 10.0}};
  const auto plan = partition_channels(4, 2, edges);
  EXPECT_EQ(plan.cut_channels, 0u);
  EXPECT_EQ(plan.atom_partition[0], plan.atom_partition[1]);
  EXPECT_EQ(plan.atom_partition[2], plan.atom_partition[3]);
  EXPECT_TRUE(std::isinf(plan.pair_lookahead(0, 1)));
  EXPECT_TRUE(std::isinf(plan.pair_lookahead(1, 0)));
}

TEST(NetsimPartition, DeterministicAndBalanced) {
  Params params;
  const auto topo = topo::Dragonfly::canonical(5);
  const auto edges = df_graph(5, params);
  for (const std::uint32_t parts : {2u, 3u, 4u, 7u}) {
    const auto a = partition_channels(topo.groups(), parts, edges);
    const auto b = partition_channels(topo.groups(), parts, edges);
    EXPECT_EQ(a.atom_partition, b.atom_partition) << "parts=" << parts;
    std::vector<std::uint32_t> size(parts, 0);
    for (const std::uint32_t part : a.atom_partition) {
      ASSERT_LT(part, parts);
      ++size[part];
    }
    const std::uint32_t cap = (topo.groups() + parts - 1) / parts;
    for (std::uint32_t p = 0; p < parts; ++p) {
      EXPECT_GE(size[p], 1u) << "empty partition " << p;
      EXPECT_LE(size[p], cap) << "oversized partition " << p;
    }
  }
}

TEST(NetsimPartition, StripeMatchesLegacyFormula) {
  const auto plan = stripe_partition(9, 4, {});
  for (std::uint32_t a = 0; a < 9; ++a) {
    EXPECT_EQ(plan.atom_partition[a], a * 4u / 9u);
  }
}

TEST(NetsimPartition, RejectsInvalidConfigs) {
  EXPECT_THROW(partition_channels(4, 0, {}), Error);
  EXPECT_THROW(partition_channels(4, 5, {}), Error);
  EXPECT_THROW(stripe_partition(4, 5, {}), Error);
  EXPECT_THROW(partition_channels(2, 2, {{0, 7, 1.0, 1.0}}), Error);
}

TEST(NetsimPartition, DragonflyGraphShape) {
  Params params;
  const auto topo = topo::Dragonfly::canonical(3);
  const auto edges = df_graph(3, params);
  // One data + one credit edge per directed global link.
  EXPECT_EQ(edges.size(), static_cast<std::size_t>(topo.num_global_links()) * 2);
  const double floor = std::min(params.credit_latency,
                                std::min(params.local_latency,
                                         params.global_latency));
  for (const ChannelEdge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_GE(e.min_delay, floor);
    EXPECT_GT(e.weight, 0.0);
  }
}

}  // namespace
}  // namespace dv::netsim
