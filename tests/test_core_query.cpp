// QueryEngine: windowed tables vs slice_time, cache semantics (hit / miss /
// LRU eviction / version invalidation), bit-exact cached results, the
// group-slab fast path, and run_parallel behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "core/query.hpp"
#include "core/spec.hpp"
#include "helpers.hpp"

namespace dv {
namespace {

using core::AggregationSpec;
using core::AttrFilter;
using core::DataSet;
using core::Entity;
using core::QueryEngine;
using core::Reducer;
using core::TimeWindow;

const dv::testing::MiniRun& mini() {
  static const auto run = dv::testing::make_mini_run();
  return run;
}

std::vector<std::pair<Entity, const char*>> windowable_attrs() {
  return {{Entity::kLocalLink, "traffic"},     {Entity::kLocalLink, "sat_time"},
          {Entity::kGlobalLink, "traffic"},    {Entity::kGlobalLink, "sat_time"},
          {Entity::kTerminal, "data_size"},    {Entity::kTerminal, "sat_time"},
          {Entity::kRouter, "local_traffic"},  {Entity::kRouter, "global_traffic"},
          {Entity::kRouter, "local_sat_time"}, {Entity::kRouter, "global_sat_time"}};
}

// ------------------------------------------------- windowed_table semantics

TEST(QueryWindow, WindowedTableMatchesSliceTimeBitExact) {
  const DataSet data(mini().run);
  const double end = mini().run.end_time;
  const double t0 = end * 0.25, t1 = end * 0.7;
  const DataSet sliced = data.slice_time(t0, t1);
  for (const auto& [e, attr] : windowable_attrs()) {
    const core::DataTable wt = data.windowed_table(e, t0, t1);
    const auto& want = sliced.table(e).column(attr);
    const auto& got = wt.column(attr);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Both paths reduce through the same PrefixSeries, so the values are
      // identical down to the last bit, not merely close.
      EXPECT_DOUBLE_EQ(want[i], got[i]) << core::to_string(e) << "." << attr
                                        << " row " << i;
    }
  }
}

TEST(QueryWindow, NonWindowedColumnsAreUntouched) {
  const DataSet data(mini().run);
  const double end = mini().run.end_time;
  const core::DataTable wt =
      data.windowed_table(Entity::kTerminal, end * 0.1, end * 0.4);
  for (const char* col : {"terminal", "group_id", "packets_finished"}) {
    EXPECT_EQ(data.table(Entity::kTerminal).column(col), wt.column(col)) << col;
  }
}

TEST(QueryWindow, FullWindowEqualsSampledTotals) {
  // [0, end] covers every frame, so the windowed column equals the series
  // total. Series are float deltas, so compare with a relative tolerance.
  const DataSet data(mini().run);
  const core::DataTable wt =
      data.windowed_table(Entity::kGlobalLink, 0.0, mini().run.end_time + 1);
  const auto& full = data.table(Entity::kGlobalLink).column("traffic");
  const auto& windowed = wt.column("traffic");
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(full[i], windowed[i], 1e-3 + full[i] * 1e-4);
  }
}

TEST(QueryWindow, SlicingUnsampledRunThrows) {
  auto run = mini().run;
  run.sample_dt = 0;
  run.local_traffic_ts = {};
  run.local_sat_ts = {};
  run.global_traffic_ts = {};
  run.global_sat_ts = {};
  run.term_traffic_ts = {};
  run.term_sat_ts = {};
  const DataSet data(run);
  EXPECT_FALSE(data.has_time_series());
  EXPECT_THROW(data.windowed_table(Entity::kTerminal, 0, 100), Error);
}

// ----------------------------------------------------------- cache behavior

TEST(QueryCache, RepeatedQueryHitsAndSharesResult) {
  const DataSet data(mini().run);
  QueryEngine eng(data);
  AggregationSpec spec;
  spec.keys = {"group_id"};
  spec.window = TimeWindow{100.0, mini().run.end_time * 0.5};
  const auto a = eng.reduce(Entity::kGlobalLink, spec, "traffic");
  const auto b = eng.reduce(Entity::kGlobalLink, spec, "traffic");
  EXPECT_EQ(a.get(), b.get());  // the literal same cached vector
  const auto s = eng.stats();
  EXPECT_GE(s.hits, 1u);
  EXPECT_GE(s.misses, 1u);
}

TEST(QueryCache, InactiveWindowAliasesBaseTable) {
  const DataSet data(mini().run);
  QueryEngine eng(data);
  const auto tbl = eng.table(Entity::kLocalLink, TimeWindow{});
  EXPECT_EQ(tbl.get(), &data.table(Entity::kLocalLink));
  EXPECT_EQ(eng.stats().entries, 0u);  // nothing cached for the base table
}

TEST(QueryCache, WindowInsensitiveQuerySharesEntryAcrossBrushes) {
  // A reduction that ignores the window (unsampled attribute, window-free
  // grouping) must not fragment the cache as the user brushes.
  const DataSet data(mini().run);
  QueryEngine eng(data);
  AggregationSpec spec;
  spec.keys = {"group_id"};
  const double end = mini().run.end_time;
  spec.window = TimeWindow{0.0, end * 0.3};
  const auto a = eng.reduce(Entity::kTerminal, spec, "avg_latency");
  spec.window = TimeWindow{end * 0.4, end * 0.9};
  const auto b = eng.reduce(Entity::kTerminal, spec, "avg_latency");
  EXPECT_EQ(a.get(), b.get());
}

TEST(QueryCache, LruEvictsWhenOverCapacity) {
  const DataSet data(mini().run);
  QueryEngine eng(data, 2);
  AggregationSpec spec;
  spec.keys = {"group_id"};
  const double end = mini().run.end_time;
  for (int i = 1; i <= 6; ++i) {
    spec.window = TimeWindow{0.0, end * 0.1 * i};
    (void)eng.reduce(Entity::kGlobalLink, spec, "traffic");
  }
  const auto s = eng.stats();
  EXPECT_LE(s.entries, 2u);
  EXPECT_GT(s.evictions, 0u);
}

TEST(QueryCache, MutatingDatasetInvalidatesByVersion) {
  DataSet data(mini().run);
  QueryEngine eng(data);
  AggregationSpec spec;
  spec.keys = {"group_id"};
  const auto before = eng.reduce(Entity::kTerminal, spec, "data_size");
  const auto v0 = data.version();

  // Derive a new column; the version bump re-keys every future query.
  std::vector<double> doubled = data.table(Entity::kTerminal).column("data_size");
  for (double& v : doubled) v *= 2.0;
  data.add_derived_column(Entity::kTerminal, "data_size_x2", std::move(doubled));
  EXPECT_GT(data.version(), v0);

  const auto after = eng.reduce(Entity::kTerminal, spec, "data_size_x2");
  ASSERT_EQ(before->size(), after->size());
  for (std::size_t g = 0; g < before->size(); ++g) {
    EXPECT_DOUBLE_EQ((*after)[g], 2.0 * (*before)[g]);
  }
}

TEST(QueryCache, ClearDropsEntriesButKeepsCounting) {
  const DataSet data(mini().run);
  QueryEngine eng(data);
  AggregationSpec spec;
  spec.keys = {"router_rank"};
  (void)eng.aggregate(Entity::kLocalLink, spec);
  EXPECT_GT(eng.stats().entries, 0u);
  eng.clear();
  EXPECT_EQ(eng.stats().entries, 0u);
  (void)eng.aggregate(Entity::kLocalLink, spec);
  EXPECT_GE(eng.stats().misses, 2u);
}

// ------------------------------------------------------ evaluation parity

TEST(QueryReduce, SlabPathMatchesSliceThenAggregate) {
  // The O(groups) slab delta must agree with slicing the run and summing
  // (same data, different association order => NEAR, not bit-exact).
  const DataSet data(mini().run);
  QueryEngine eng(data);
  const double end = mini().run.end_time;
  AggregationSpec spec;
  spec.keys = {"group_id"};
  spec.window = TimeWindow{end * 0.2, end * 0.6};
  const auto fast = eng.reduce(Entity::kGlobalLink, spec, "traffic");
  EXPECT_GE(eng.stats().slab_builds, 1u);
  EXPECT_GE(eng.stats().slab_reduces, 1u);

  const DataSet sliced = data.slice_time(end * 0.2, end * 0.6);
  AggregationSpec plain;
  plain.keys = {"group_id"};
  const core::Aggregation agg(sliced.table(Entity::kGlobalLink), plain);
  const auto want = agg.reduce("traffic", Reducer::kSum);
  ASSERT_EQ(want.size(), fast->size());
  double scale = 0.0;
  for (double v : want) scale += std::abs(v);
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_NEAR((*fast)[g], want[g], 1e-6 + scale * 1e-9) << "group " << g;
  }
}

TEST(QueryReduce, WindowedNonSlabPathIsBitExactWithSliceThenAggregate) {
  // kMax is not slab-eligible, so it reduces over the windowed table — the
  // exact same per-row values slice_time produces, hence bit-exact.
  const DataSet data(mini().run);
  QueryEngine eng(data);
  const double end = mini().run.end_time;
  AggregationSpec spec;
  spec.keys = {"router_rank"};
  spec.window = TimeWindow{end * 0.1, end * 0.8};
  const auto got = eng.reduce(Entity::kLocalLink, spec, "traffic", Reducer::kMax);

  const DataSet sliced = data.slice_time(end * 0.1, end * 0.8);
  AggregationSpec plain;
  plain.keys = {"router_rank"};
  const core::Aggregation agg(sliced.table(Entity::kLocalLink), plain);
  const auto want = agg.reduce("traffic", Reducer::kMax);
  ASSERT_EQ(want.size(), got->size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_DOUBLE_EQ((*got)[g], want[g]);
  }
}

TEST(QueryReduce, WindowDependentGroupingFiltersWindowedValues) {
  // A filter on a windowable attribute must test the *windowed* values:
  // links idle inside the window drop out even if busy over the full run.
  const DataSet data(mini().run);
  QueryEngine eng(data);
  const double end = mini().run.end_time;
  AggregationSpec spec;
  AttrFilter f;
  f.attr = "traffic";
  f.lo = 1.0;  // busy-in-window links only
  spec.filters = {f};
  spec.window = TimeWindow{end * 0.3, end * 0.5};
  const auto agg = eng.aggregate(Entity::kGlobalLink, spec);

  const DataSet sliced = data.slice_time(end * 0.3, end * 0.5);
  AggregationSpec plain;
  plain.filters = {f};
  const core::Aggregation want(sliced.table(Entity::kGlobalLink), plain);
  EXPECT_EQ(want.size(), agg->size());
}

// --------------------------------------------- AttrFilter unbounded default

TEST(QueryFilter, DefaultFilterRangeIsUnbounded) {
  // Regression: a default-constructed AttrFilter used to be lo == hi == 0,
  // silently filtering out every row with a nonzero value.
  const DataSet data(mini().run);
  AggregationSpec spec;
  AttrFilter f;
  f.attr = "traffic";
  spec.filters = {f};
  const core::Aggregation agg(data.table(Entity::kLocalLink), spec);
  std::size_t covered = 0;
  for (const auto& g : agg.groups()) covered += g.rows.size();
  EXPECT_EQ(covered, data.table(Entity::kLocalLink).rows());
}

TEST(QueryFilter, OneSidedFiltersWork) {
  const DataSet data(mini().run);
  const auto& col = data.table(Entity::kTerminal).column("data_size");
  const double mid =
      std::accumulate(col.begin(), col.end(), 0.0) / col.size();

  AggregationSpec lo_only;
  AttrFilter f;
  f.attr = "data_size";
  f.lo = mid;
  lo_only.filters = {f};
  const core::Aggregation above(data.table(Entity::kTerminal), lo_only);

  AggregationSpec hi_only;
  AttrFilter g;
  g.attr = "data_size";
  g.hi = mid;
  hi_only.filters = {g};
  const core::Aggregation below(data.table(Entity::kTerminal), hi_only);

  std::size_t n_above = 0, n_below = 0;
  for (const auto& grp : above.groups()) n_above += grp.rows.size();
  for (const auto& grp : below.groups()) n_below += grp.rows.size();
  EXPECT_GT(n_above, 0u);
  EXPECT_GT(n_below, 0u);
  // mid is a column value boundary: rows equal to mid land in both.
  EXPECT_GE(n_above + n_below, data.table(Entity::kTerminal).rows());
}

TEST(QueryFilter, SpecScriptNullFilterRoundTrips) {
  const auto spec = core::ProjectionSpec::parse(R"(
    { project: "terminal", aggregate: "router_rank",
      vmap: { color: "sat_time" },
      filter: { traffic: null } }
  )");
  ASSERT_EQ(spec.levels[0].filters.size(), 1u);
  EXPECT_FALSE(spec.levels[0].filters[0].bounded_lo());
  EXPECT_FALSE(spec.levels[0].filters[0].bounded_hi());
  const auto again = core::ProjectionSpec::parse(spec.to_script());
  ASSERT_EQ(again.levels[0].filters.size(), 1u);
  EXPECT_FALSE(again.levels[0].filters[0].bounded_lo());
  EXPECT_FALSE(again.levels[0].filters[0].bounded_hi());
}

TEST(QueryFilter, SpecWindowRoundTrips) {
  auto spec = core::SpecBuilder()
                  .level(Entity::kGlobalLink)
                  .aggregate({"group_id"})
                  .color("sat_time")
                  .window(1500.0, 9250.0)
                  .no_ribbons()
                  .build();
  EXPECT_TRUE(spec.window.active());
  const auto again = core::ProjectionSpec::parse(spec.to_script());
  EXPECT_DOUBLE_EQ(again.window.t0, 1500.0);
  EXPECT_DOUBLE_EQ(again.window.t1, 9250.0);
}

// ------------------------------------------------------------ parallelism

TEST(QueryParallel, ConcurrentEngineUseIsDeterministic) {
  const DataSet data(mini().run);
  const double end = mini().run.end_time;

  // Sequential reference results, one engine per query (all cold).
  std::vector<std::vector<double>> want(8);
  for (int i = 0; i < 8; ++i) {
    QueryEngine fresh(data);
    AggregationSpec spec;
    spec.keys = {"group_id"};
    spec.window = TimeWindow{0.0, end * 0.1 * (1 + i % 4)};
    want[i] = *fresh.reduce(Entity::kGlobalLink, spec, "traffic");
  }

  // The same queries racing on one shared engine (duplicate windows race on
  // the same cache key on purpose).
  QueryEngine shared(data);
  std::vector<std::vector<double>> got(8);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      AggregationSpec spec;
      spec.keys = {"group_id"};
      spec.window = TimeWindow{0.0, end * 0.1 * (1 + i % 4)};
      got[i] = *shared.reduce(Entity::kGlobalLink, spec, "traffic");
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(want[i].size(), got[i].size());
    for (std::size_t g = 0; g < want[i].size(); ++g) {
      EXPECT_EQ(want[i][g], got[i][g]) << "query " << i << " group " << g;
    }
  }
}

TEST(QueryParallel, RunParallelRunsEveryTaskOnce) {
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  core::run_parallel(std::move(tasks));
  EXPECT_EQ(count.load(), 32);
}

TEST(QueryParallel, RunParallelPropagatesTaskExceptions) {
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw Error("task failed"); });
  tasks.push_back([] {});
  EXPECT_THROW(core::run_parallel(std::move(tasks)), Error);
}

TEST(QueryParallel, NestedRunParallelFallsBackToInline) {
  // A task that itself fans out must not deadlock on the pool barrier.
  std::atomic<int> inner{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&inner] {
      std::vector<std::function<void()>> nested;
      for (int j = 0; j < 4; ++j) {
        nested.push_back([&inner] { inner.fetch_add(1); });
      }
      core::run_parallel(std::move(nested));
    });
  }
  core::run_parallel(std::move(outer));
  EXPECT_EQ(inner.load(), 16);
}

}  // namespace
}  // namespace dv
