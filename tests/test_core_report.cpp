// HTML report exporter tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/report.hpp"
#include "helpers.hpp"

namespace dv::core {
namespace {

ProjectionSpec small_spec() {
  return SpecBuilder()
      .level(Entity::kGlobalLink)
      .aggregate({"router_rank"})
      .color("sat_time")
      .size("traffic")
      .ribbons(Entity::kLocalLink, "router_rank")
      .build();
}

TEST(Report, ContainsAllSections) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, small_spec());

  ReportBuilder report("Mixed workload analysis");
  report.note("Setup", "Two jobs on a p=2 dragonfly with <tags> & quotes")
      .run_summary(data)
      .projection(view, "Global link load by rank");

  const std::string html = report.html();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("Mixed workload analysis"), std::string::npos);
  EXPECT_NE(html.find("&lt;tags&gt; &amp; quotes"), std::string::npos);  // escaped
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("projection spec"), std::string::npos);
  EXPECT_NE(html.find("ribbons"), std::string::npos);  // embedded script
  EXPECT_NE(html.find("dragonfly g=9"), std::string::npos);
}

TEST(Report, EmbedsDetailAndTimeline) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  DetailView detail(data);
  TimelineView timeline(data);
  ReportBuilder report("Session export");
  report.detail(detail, "Link scatters and terminal parallel coordinates")
      .timeline(timeline, "Traffic and saturation over time");
  const std::string html = report.html();
  EXPECT_NE(html.find("parallel coordinates"), std::string::npos);
  EXPECT_NE(html.find("Network link traffic"), std::string::npos);
  // Two figures embedded.
  std::size_t figures = 0;
  for (std::size_t pos = html.find("<figure>"); pos != std::string::npos;
       pos = html.find("<figure>", pos + 1)) {
    ++figures;
  }
  EXPECT_EQ(figures, 2u);
}

TEST(Report, ComparisonTableAndSave) {
  const auto a = dv::testing::make_mini_run(routing::Algo::kMinimal);
  const auto b = dv::testing::make_mini_run(routing::Algo::kAdaptive);
  const DataSet da(a.run), db(b.run);
  const ComparisonView cmp({&da, &db}, small_spec(),
                           {"Minimal", "Adaptive"});
  ReportBuilder report("Routing comparison");
  report.comparison(cmp, "Minimal vs adaptive under shared scales");
  const std::string html = report.html();
  EXPECT_NE(html.find("Minimal"), std::string::npos);
  EXPECT_NE(html.find("nn_job"), std::string::npos);
  EXPECT_NE(html.find("avg latency"), std::string::npos);

  const auto path =
      (std::filesystem::temp_directory_path() / "dv_report_test.html")
          .string();
  report.save(path);
  EXPECT_GT(std::filesystem::file_size(path), 2000u);
  std::filesystem::remove(path);
  EXPECT_THROW(report.save("/nonexistent/dir/report.html"), Error);
}

}  // namespace
}  // namespace dv::core
