// Differential fuzzing for the projection-spec parser: mutate valid
// scripts and require that every input either parses — in which case
// parse -> serialize -> parse must reach a fixpoint — or fails with a
// dv::Error diagnostic. Anything else (crash, foreign exception type,
// empty message) is a bug.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/spec.hpp"

namespace dv::core {
namespace {

const std::vector<std::string>& base_scripts() {
  static const std::vector<std::string> scripts = [] {
    std::vector<std::string> out;
    // Every preset exercised through its canonical serialized form, plus a
    // hand-written script covering window / null filters / one-sided bounds.
    for (const auto& name : preset_names()) {
      out.push_back(preset(name).to_script());
    }
    out.push_back(R"(
      { project: "global_link", aggregate: ["group_id"], maxBins: 8,
        vmap: { color: "sat_time", size: "traffic" },
        filter: { traffic: null, sat_time: [10, null] },
        colors: ["white", "purple"] },
      { window: [1000, 25000] },
      { project: "terminal", aggregate: "router_rank",
        vmap: { color: "sat_time" },
        filter: { data_size: [null, 4096] } }
    )");
    return out;
  }();
  return scripts;
}

std::string mutate(const std::string& base, std::mt19937& rng) {
  static const char* kTokens[] = {"{",      "}",    "[",     "]",      ",",
                                  ":",      "null", "\"",    "1e9999", "-3",
                                  "window", "vmap", "filter", "project"};
  std::string s = base;
  const int edits = 1 + static_cast<int>(rng() % 3);
  for (int e = 0; e < edits; ++e) {
    if (s.empty()) break;
    const std::size_t pos = rng() % s.size();
    switch (rng() % 6) {
      case 0:  // truncate
        s.resize(pos);
        break;
      case 1:  // flip one char to a random printable
        s[pos] = static_cast<char>(' ' + rng() % 95);
        break;
      case 2:  // insert a grammar token
        s.insert(pos, kTokens[rng() % (sizeof(kTokens) / sizeof(*kTokens))]);
        break;
      case 3: {  // delete a short span
        const std::size_t len = 1 + rng() % 8;
        s.erase(pos, std::min(len, s.size() - pos));
        break;
      }
      case 4: {  // duplicate a short span
        const std::size_t len = std::min<std::size_t>(1 + rng() % 12,
                                                      s.size() - pos);
        s.insert(pos, s.substr(pos, len));
        break;
      }
      case 5: {  // splice in a digit run (perturbs numbers)
        const char digits[] = "0123456789.e-";
        std::string num;
        for (std::size_t i = 0; i < 1 + rng() % 6; ++i) {
          num += digits[rng() % (sizeof(digits) - 1)];
        }
        s.insert(pos, num);
        break;
      }
    }
  }
  return s;
}

/// Feeds one input through parse; on success requires the serialized form
/// to be a parser fixpoint. Returns true when the input parsed.
bool check_one(const std::string& input) {
  ProjectionSpec spec;
  try {
    spec = ProjectionSpec::parse(input);
  } catch (const Error& e) {
    EXPECT_STRNE(e.what(), "") << "diagnostic must not be empty";
    return false;
  }
  // Parsed: serialization must itself parse, to the same canonical form.
  const std::string script = spec.to_script();
  try {
    const ProjectionSpec again = ProjectionSpec::parse(script);
    EXPECT_EQ(again.to_script(), script)
        << "serialize -> parse -> serialize is not a fixpoint for:\n"
        << input;
  } catch (const Error& e) {
    ADD_FAILURE() << "serialized form rejected (" << e.what() << "):\n"
                  << script;
  }
  return true;
}

TEST(SpecFuzz, BaseScriptsAllParseAndRoundTrip) {
  for (const auto& s : base_scripts()) {
    EXPECT_TRUE(check_one(s)) << s;
  }
}

TEST(SpecFuzz, MutatedScriptsNeverCrashAndRoundTripWhenParsed) {
  std::mt19937 rng(0xd1a60u);  // deterministic: failures are reproducible
  std::size_t parsed = 0, rejected = 0;
  for (const auto& base : base_scripts()) {
    for (int i = 0; i < 250; ++i) {
      const std::string input = mutate(base, rng);
      SCOPED_TRACE("mutant " + std::to_string(i) + " of base\n" + base);
      if (check_one(input)) {
        ++parsed;
      } else {
        ++rejected;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The mutator must actually exercise both outcomes to mean anything.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(SpecFuzz, GarbageInputsAreRejectedWithDiagnostics) {
  const char* kGarbage[] = {
      "", "   ", "{", "}", "[[[[", "{]", "\"", "{ project: }",
      "{ project: \"no_such_entity\", vmap: { color: \"x\" } }",
      "{ window: [5] }", "{ window: [9, 2] }", "{ window: \"all\" }",
      "\xff\xfe\x00garbage", "{ aggregate: 42 }",
  };
  for (const char* s : kGarbage) {
    EXPECT_THROW(ProjectionSpec::parse(s), Error) << "input: " << s;
  }
}

}  // namespace
}  // namespace dv::core
