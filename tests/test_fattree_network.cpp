// Fat-tree simulator tests (the paper's future-work topology): flow
// conservation, hop classes, ECMP spreading, incast congestion, and the
// RunMetrics mapping that lets the VA layer consume fat-tree runs.
#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "netsim/fattree_network.hpp"

namespace dv::netsim {
namespace {

topo::FatTree ft4() { return topo::FatTree(4); }  // 16 hosts, 20 switches

FatTreeParams fast_params() {
  FatTreeParams p;
  p.packet_size = 512;
  p.event_budget = 30'000'000;
  return p;
}

TEST(FatTreeNet, FlowConservationUnderRandomTraffic) {
  const auto topo = ft4();
  FatTreeNetwork net(topo, fast_params(), 3);
  Rng rng(5);
  std::uint64_t injected = 0;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(topo.num_hosts()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_hosts()));
    }
    const std::uint64_t bytes = 100 + rng.next_below(4000);
    injected += bytes;
    net.add_message({src, dst, bytes, rng.next_double() * 20000.0, 0});
  }
  const auto m = net.run();
  EXPECT_DOUBLE_EQ(m.total_injected(), static_cast<double>(injected));
  EXPECT_GT(net.packets_delivered(), 0u);
}

TEST(FatTreeNet, HopClassesMatchTopology) {
  const auto topo = ft4();
  struct Case {
    std::uint32_t src, dst;
    double hops;
  };
  // Same edge (hosts 0,1): 1 switch; same pod (0, 2): 3; cross pod: 5.
  const Case cases[] = {{0, 1, 1.0}, {0, 2, 3.0}, {0, 15, 5.0}};
  for (const auto& c : cases) {
    FatTreeNetwork net(topo, fast_params(), 1);
    net.add_message({c.src, c.dst, 512, 0.0, 0});
    const auto m = net.run();
    EXPECT_DOUBLE_EQ(m.terminals[c.dst].avg_hops(), c.hops)
        << c.src << "->" << c.dst;
    EXPECT_DOUBLE_EQ(m.terminals[c.dst].avg_hops(),
                     topo.minimal_switch_hops(c.src, c.dst));
  }
}

TEST(FatTreeNet, EcmpSpreadsCrossPodFlows) {
  const auto topo = ft4();
  FatTreeNetwork net(topo, fast_params(), 7);
  // Many distinct flows from pod 0 to pod 3.
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t d = 12; d < 16; ++d) {
      net.add_message({s, d, 8192, 0.0, 0});
    }
  }
  const auto m = net.run();
  int used_global = 0;
  for (const auto& l : m.global_links) used_global += l.traffic > 0;
  EXPECT_GT(used_global, 4) << "ECMP should use multiple agg-core links";
}

TEST(FatTreeNet, IncastSaturatesTheVictimEdgeLink) {
  const auto topo = ft4();
  FatTreeParams p = fast_params();
  p.queue_packets = 2;
  FatTreeNetwork net(topo, p, 1);
  // Everyone floods host 0.
  for (std::uint32_t s = 4; s < 16; ++s) {
    net.add_message({s, 0, 64 * 1024, 0.0, 0});
  }
  const auto m = net.run();
  EXPECT_GT(m.terminals[0].sat_time, 0.0)
      << "victim's edge down-link must saturate";
}

TEST(FatTreeNet, RunMetricsMappingFeedsTheVaLayer) {
  const auto topo = ft4();
  FatTreeNetwork net(topo, fast_params(), 9);
  net.set_labels("uniform_random", "contiguous", {"job0"});
  std::vector<std::int32_t> jobs(topo.num_hosts(), 0);
  net.set_jobs(jobs);
  Rng rng(11);
  for (int i = 0; i < 150; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(topo.num_hosts()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_hosts()));
    }
    net.add_message({src, dst, 2048, rng.next_double() * 10000.0, 0});
  }
  const auto m = net.run();
  // k=4: 4 pods + 1 pseudo-pod of cores; k routers per group.
  EXPECT_EQ(m.groups, 5u);
  EXPECT_EQ(m.routers_per_group, 4u);
  EXPECT_EQ(m.terminals.size(),
            m.groups * m.routers_per_group * m.terminals_per_router);
  EXPECT_EQ(m.local_links.size(), 4u * 2u * 2u * 2u);   // pods*edges*aggs*2
  EXPECT_EQ(m.global_links.size(), 8u * 2u * 2u);       // aggs*uplinks*2

  // The whole VA pipeline consumes the mapped run unchanged.
  const core::DataSet data(m);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"group_id"})
                        .color("sat_time")
                        .size("traffic")
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  const core::ProjectionView view(data, spec);
  EXPECT_EQ(view.rings().size(), 2u);
  EXPECT_FALSE(view.rings()[0].items.empty());
  const auto svg = view.to_svg(400, "fat tree via the dragonviz VA layer");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(FatTreeNet, Validation) {
  const auto topo = ft4();
  FatTreeNetwork net(topo, fast_params(), 1);
  EXPECT_THROW(net.add_message({0, 0, 10, 0.0, 0}), Error);
  EXPECT_THROW(net.add_message({0, 999, 10, 0.0, 0}), Error);
  EXPECT_THROW(net.add_message({0, 1, 0, 0.0, 0}), Error);
  FatTreeParams bad;
  bad.packet_size = 0;
  EXPECT_THROW(FatTreeNetwork(topo, bad, 1), Error);
}

}  // namespace
}  // namespace dv::netsim
