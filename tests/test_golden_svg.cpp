// Golden-file SVG regression tests. Rendered markup is compared against
// checked-in references with float-tolerant normalization: literal text
// must match exactly, embedded numbers may differ by formatting noise.
// Regenerate the references with:  DV_UPDATE_GOLDEN=1 ./dv_tests
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/projection.hpp"
#include "core/views.hpp"
#include "helpers.hpp"

#ifndef DV_TEST_GOLDEN_DIR
#define DV_TEST_GOLDEN_DIR "tests/golden"
#endif

namespace dv {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DV_TEST_GOLDEN_DIR) + "/" + name;
}

bool update_mode() {
  const char* e = std::getenv("DV_UPDATE_GOLDEN");
  return e != nullptr && *e != '\0' && *e != '0';
}

/// Splits SVG markup into literal chunks and parsed numbers, so "1.5000"
/// and "1.5" normalize identically and last-digit float noise is tolerated.
struct SvgTokens {
  std::vector<std::string> literals;  // literals.size() == numbers.size() + 1
  std::vector<double> numbers;
};

SvgTokens tokenize(const std::string& s) {
  SvgTokens out;
  std::string lit;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    const bool digit_start =
        (c >= '0' && c <= '9') ||
        ((c == '-' || c == '.') && i + 1 < s.size() && s[i + 1] >= '0' &&
         s[i + 1] <= '9');
    if (digit_start) {
      char* end = nullptr;
      const double v = std::strtod(s.c_str() + i, &end);
      const auto consumed = static_cast<std::size_t>(end - (s.c_str() + i));
      if (consumed > 0) {
        out.literals.push_back(std::move(lit));
        lit.clear();
        out.numbers.push_back(v);
        i += consumed;
        continue;
      }
    }
    lit.push_back(c);
    ++i;
  }
  out.literals.push_back(std::move(lit));
  return out;
}

/// On comparison failure, drops the actual and expected markup into
/// $DV_GOLDEN_DIFF_DIR (when set) so CI can upload the pair as an
/// inspectable artifact instead of leaving only an assertion message.
class GoldenDiffDump {
 public:
  GoldenDiffDump(std::string name, const std::string& actual,
                 const std::string& want)
      : name_(std::move(name)),
        actual_(actual),
        want_(want),
        failed_before_(::testing::Test::HasFailure()) {}

  ~GoldenDiffDump() {
    if (failed_before_ || !::testing::Test::HasFailure()) return;
    const char* dir = std::getenv("DV_GOLDEN_DIFF_DIR");
    if (dir == nullptr || *dir == '\0') return;
    dump(std::string(dir) + "/actual_" + name_, actual_);
    if (!want_.empty()) dump(std::string(dir) + "/golden_" + name_, want_);
  }

 private:
  static void dump(const std::string& path, const std::string& body) {
    std::ofstream os(path, std::ios::binary);
    if (os.good()) os << body;
  }

  std::string name_, actual_, want_;
  bool failed_before_;
};

void expect_svg_matches_golden(const std::string& svg,
                               const std::string& name) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write golden: " << path;
    os << svg;
    return;
  }
  std::ifstream is(path, std::ios::binary);
  std::string want;
  if (is.good()) {
    std::ostringstream buf;
    buf << is.rdbuf();
    want = buf.str();
  }
  const GoldenDiffDump diff(name, svg, want);
  ASSERT_TRUE(is.good()) << "missing golden file " << path
                         << " — regenerate with DV_UPDATE_GOLDEN=1";

  const SvgTokens a = tokenize(want), b = tokenize(svg);
  ASSERT_EQ(a.literals.size(), b.literals.size())
      << name << ": structure changed (token count differs); if intended, "
      << "regenerate with DV_UPDATE_GOLDEN=1";
  for (std::size_t i = 0; i < a.literals.size(); ++i) {
    ASSERT_EQ(a.literals[i], b.literals[i])
        << name << ": literal chunk " << i << " differs";
  }
  for (std::size_t i = 0; i < a.numbers.size(); ++i) {
    const double tol =
        1e-4 + 2e-4 * std::max(std::abs(a.numbers[i]), std::abs(b.numbers[i]));
    ASSERT_NEAR(a.numbers[i], b.numbers[i], tol)
        << name << ": number " << i << " drifted past formatting noise";
  }
}

const dv::testing::MiniRun& mini() {
  static const auto run = dv::testing::make_mini_run();
  return run;
}

TEST(GoldenSvg, NormalizerToleratesFloatFormattingOnly) {
  // Self-test of the comparator before trusting it on real views.
  const SvgTokens a = tokenize("<rect x=\"1.5000\" y=\"-2\"/>");
  const SvgTokens b = tokenize("<rect x=\"1.5\" y=\"-2.00001\"/>");
  ASSERT_EQ(a.literals, b.literals);
  ASSERT_EQ(a.numbers.size(), 2u);
  EXPECT_DOUBLE_EQ(a.numbers[0], 1.5);
  EXPECT_DOUBLE_EQ(a.numbers[1], -2.0);
  EXPECT_NEAR(a.numbers[1], b.numbers[1], 1e-4);
  // Structural changes do not slip through as number drift.
  EXPECT_NE(tokenize("<circle r=\"3\"/>").literals, a.literals);
}

TEST(GoldenSvg, ProjectionFig7) {
  const core::DataSet data(mini().run);
  const core::ProjectionView view(data, core::preset("fig7"));
  expect_svg_matches_golden(view.to_svg(420), "projection_fig7.svg");
}

TEST(GoldenSvg, ProjectionInteractiveWindowed) {
  const core::DataSet data(mini().run);
  auto spec = core::preset("interactive");
  const double end = mini().run.end_time;
  spec.window = core::TimeWindow{end * 0.25, end * 0.75};
  core::QueryEngine engine(data);
  const core::ProjectionView view(data, spec, nullptr, &engine);
  expect_svg_matches_golden(view.to_svg(420),
                            "projection_interactive_windowed.svg");
}

TEST(GoldenSvg, TimelineView) {
  const core::DataSet data(mini().run);
  const core::TimelineView timeline(data);
  expect_svg_matches_golden(timeline.to_svg(600, 160), "timeline.svg");
}

}  // namespace
}  // namespace dv
