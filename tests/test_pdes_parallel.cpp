// Conservative parallel engine tests: protocol contracts and sequential
// equivalence on PHOLD.
#include <gtest/gtest.h>

#include "pdes/parallel.hpp"
#include "pdes/phold.hpp"

namespace dv::pdes {
namespace {

class CountingLp : public ParallelLp {
 public:
  std::uint64_t count = 0;
  void on_event(ParallelContext&, const Event&) override { ++count; }
};

/// Forwards each event to a fixed peer with a fixed delay.
class ForwardingLp : public ParallelLp {
 public:
  LpId peer = 0;
  double delay = 0.0;
  int remaining = 0;
  std::vector<SimTime> times;

  void on_event(ParallelContext& ctx, const Event& ev) override {
    times.push_back(ctx.now());
    if (remaining-- > 0) ctx.schedule(ctx.now() + delay, peer, ev.kind);
  }
};

TEST(ParallelPdes, SinglePartitionBehavesSequentially) {
  ParallelSimulator sim(1, 1.0);
  CountingLp lp;
  const LpId id = sim.add_lp(&lp);
  for (int i = 0; i < 20; ++i) sim.schedule(i * 0.5, id, 0);
  sim.run_until(100.0);
  EXPECT_EQ(lp.count, 20u);
  EXPECT_EQ(sim.events_processed(), 20u);
}

TEST(ParallelPdes, CrossPartitionPingPong) {
  ParallelSimulator sim(2, 1.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  b.peer = ia;
  a.delay = b.delay = 1.5;  // >= lookahead
  a.remaining = b.remaining = 10;
  sim.schedule(0.0, ia, 0);
  sim.run_until(100.0);
  // 1 initial event + 10 forwards each way.
  EXPECT_EQ(a.times.size() + b.times.size(), 21u);
  // Alternating, strictly increasing timestamps.
  for (std::size_t i = 1; i < a.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.times[i] - a.times[i - 1], 3.0);
  }
}

TEST(ParallelPdes, LookaheadContractEnforced) {
  ParallelSimulator sim(2, 2.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  a.delay = 0.5;  // < lookahead: violates the conservative contract
  a.remaining = 1;
  sim.schedule(0.0, ia, 0);
  EXPECT_THROW(sim.run_until(10.0), Error);
}

TEST(ParallelPdes, SamePartitionAllowsShortDelays) {
  ParallelSimulator sim(2, 2.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 0);  // same partition
  a.peer = ib;
  b.peer = ia;
  a.delay = b.delay = 0.1;  // fine within a partition
  a.remaining = b.remaining = 5;
  sim.schedule(0.0, ia, 0);
  EXPECT_NO_THROW(sim.run_until(10.0));
  EXPECT_EQ(sim.events_processed(), 11u);
}

TEST(ParallelPdes, RunUntilHonoursHorizonInclusively) {
  ParallelSimulator sim(2, 1.0);
  CountingLp lp;
  const LpId id = sim.add_lp(&lp);
  sim.schedule(5.0, id, 0);
  sim.schedule(10.0, id, 0);   // exactly at the horizon: runs
  sim.schedule(10.001, id, 0); // beyond: does not
  sim.run_until(10.0);
  EXPECT_EQ(lp.count, 2u);
}

TEST(ParallelPdes, InvalidConfigs) {
  EXPECT_THROW(ParallelSimulator(0, 1.0), Error);
  EXPECT_THROW(ParallelSimulator(2, 0.0), Error);
  ParallelSimulator sim(2, 1.0);
  CountingLp lp;
  EXPECT_THROW(sim.add_lp(nullptr), Error);
  EXPECT_THROW(sim.add_lp(&lp, 5), Error);
  const LpId id = sim.add_lp(&lp);
  EXPECT_THROW(sim.schedule(-1.0, id, 0), Error);
  EXPECT_THROW(sim.schedule(0.0, 99, 0), Error);
}

class PholdEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PholdEquivalence, ParallelMatchesSequential) {
  PholdConfig cfg;
  cfg.lps = 24;
  cfg.population = 3;
  cfg.lookahead = 1.0;
  cfg.mean_delay = 4.0;
  cfg.horizon = 500.0;
  cfg.seed = 42;
  const auto seq = run_phold_sequential(cfg);
  const auto par = run_phold_parallel(cfg, GetParam());
  EXPECT_GT(seq.events, 1000u);
  EXPECT_EQ(par.events, seq.events);
  EXPECT_EQ(par.per_lp, seq.per_lp);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PholdEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Phold, DeterministicAcrossRuns) {
  PholdConfig cfg;
  cfg.lps = 12;
  cfg.horizon = 200.0;
  const auto a = run_phold_parallel(cfg, 3);
  const auto b = run_phold_parallel(cfg, 3);
  EXPECT_EQ(a.per_lp, b.per_lp);
}

}  // namespace
}  // namespace dv::pdes
