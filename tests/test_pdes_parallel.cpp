// Conservative parallel engine tests: protocol contracts and sequential
// equivalence on PHOLD.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <utility>

#include "pdes/parallel.hpp"
#include "pdes/phold.hpp"

namespace dv::pdes {
namespace {

class CountingLp : public ParallelLp {
 public:
  std::uint64_t count = 0;
  void on_event(ParallelContext&, const Event&) override { ++count; }
};

/// Forwards each event to a fixed peer with a fixed delay.
class ForwardingLp : public ParallelLp {
 public:
  LpId peer = 0;
  double delay = 0.0;
  int remaining = 0;
  std::vector<SimTime> times;

  void on_event(ParallelContext& ctx, const Event& ev) override {
    times.push_back(ctx.now());
    if (remaining-- > 0) ctx.schedule(ctx.now() + delay, peer, ev.kind);
  }
};

TEST(ParallelPdes, SinglePartitionBehavesSequentially) {
  ParallelSimulator sim(1, 1.0);
  CountingLp lp;
  const LpId id = sim.add_lp(&lp);
  for (int i = 0; i < 20; ++i) sim.schedule(i * 0.5, id, 0);
  sim.run_until(100.0);
  EXPECT_EQ(lp.count, 20u);
  EXPECT_EQ(sim.events_processed(), 20u);
}

TEST(ParallelPdes, CrossPartitionPingPong) {
  ParallelSimulator sim(2, 1.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  b.peer = ia;
  a.delay = b.delay = 1.5;  // >= lookahead
  a.remaining = b.remaining = 10;
  sim.schedule(0.0, ia, 0);
  sim.run_until(100.0);
  // 1 initial event + 10 forwards each way.
  EXPECT_EQ(a.times.size() + b.times.size(), 21u);
  // Alternating, strictly increasing timestamps.
  for (std::size_t i = 1; i < a.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.times[i] - a.times[i - 1], 3.0);
  }
}

TEST(ParallelPdes, LookaheadContractEnforced) {
  ParallelSimulator sim(2, 2.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  a.delay = 0.5;  // < lookahead: violates the conservative contract
  a.remaining = 1;
  sim.schedule(0.0, ia, 0);
  EXPECT_THROW(sim.run_until(10.0), Error);
}

TEST(ParallelPdes, SamePartitionAllowsShortDelays) {
  ParallelSimulator sim(2, 2.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 0);  // same partition
  a.peer = ib;
  b.peer = ia;
  a.delay = b.delay = 0.1;  // fine within a partition
  a.remaining = b.remaining = 5;
  sim.schedule(0.0, ia, 0);
  EXPECT_NO_THROW(sim.run_until(10.0));
  EXPECT_EQ(sim.events_processed(), 11u);
}

TEST(ParallelPdes, RunUntilHonoursHorizonInclusively) {
  ParallelSimulator sim(2, 1.0);
  CountingLp lp, other;
  const LpId id = sim.add_lp(&lp, 0);
  sim.add_lp(&other, 1);  // every partition must own an LP
  sim.schedule(5.0, id, 0);
  sim.schedule(10.0, id, 0);   // exactly at the horizon: runs
  sim.schedule(10.001, id, 0); // beyond: does not
  sim.run_until(10.0);
  EXPECT_EQ(lp.count, 2u);
}

TEST(ParallelPdes, InvalidConfigs) {
  EXPECT_THROW(ParallelSimulator(0, 1.0), Error);
  EXPECT_THROW(ParallelSimulator(2, 0.0), Error);
  ParallelSimulator sim(2, 1.0);
  CountingLp lp;
  EXPECT_THROW(sim.add_lp(nullptr), Error);
  EXPECT_THROW(sim.add_lp(&lp, 5), Error);
  const LpId id = sim.add_lp(&lp);
  EXPECT_THROW(sim.schedule(-1.0, id, 0), Error);
  EXPECT_THROW(sim.schedule(0.0, 99, 0), Error);
}

TEST(ParallelPdes, MorePartitionsThanLpsRejected) {
  // Empty partitions would idle-spin at every window edge; run_until
  // rejects the configuration up front with an actionable message.
  ParallelSimulator sim(4, 1.0);
  CountingLp lp;
  const LpId id = sim.add_lp(&lp);
  sim.schedule(1.0, id, 0);
  try {
    sim.run_until(10.0);
    FAIL() << "expected run_until to reject partitions > LP count";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("more partitions than LPs"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParallelPdes, PairwiseLookaheadMatrix) {
  ParallelSimulator sim(3, 1.0);
  EXPECT_DOUBLE_EQ(sim.pair_lookahead(0, 1), 1.0);  // defaults to the floor
  sim.set_pair_lookahead(0, 1, 5.0);
  sim.set_pair_lookahead(1, 0, 2.0);
  EXPECT_DOUBLE_EQ(sim.pair_lookahead(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(sim.pair_lookahead(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(sim.pair_lookahead(2, 0), 1.0);  // untouched pair
  // Entries below the global floor are rejected; the diagonal is invalid.
  EXPECT_THROW(sim.set_pair_lookahead(0, 1, 0.5), Error);
  EXPECT_THROW(sim.set_pair_lookahead(1, 1, 2.0), Error);
}

TEST(ParallelPdes, PairwiseLookaheadContractEnforced) {
  ParallelSimulator sim(2, 1.0);
  sim.set_pair_lookahead(0, 1, 4.0);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  a.delay = 2.0;  // clears the 1.0 floor but not the 4.0 pair lookahead
  a.remaining = 1;
  sim.schedule(0.0, ia, 0);
  EXPECT_THROW(sim.run_until(10.0), Error);
}

TEST(ParallelPdes, UnreachablePairRejectsSends) {
  ParallelSimulator sim(2, 1.0);
  sim.set_pair_lookahead(
      0, 1, std::numeric_limits<double>::infinity());  // no channel 0 -> 1
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  a.delay = 1e9;  // no finite delay can satisfy an infinite lookahead
  a.remaining = 1;
  sim.schedule(0.0, ia, 0);
  EXPECT_THROW(sim.run_until(10.0), Error);
}

TEST(ParallelPdes, WiderPairLookaheadKeepsPingPongExact) {
  // Raising the pairwise lookaheads above the floor must not change what
  // runs — only how far workers may advance between negotiations.
  ParallelSimulator sim(2, 1.0);
  sim.set_pair_lookahead(0, 1, 1.5);
  sim.set_pair_lookahead(1, 0, 1.5);
  ForwardingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  a.peer = ib;
  b.peer = ia;
  a.delay = b.delay = 1.5;
  a.remaining = b.remaining = 10;
  sim.schedule(0.0, ia, 0);
  sim.run_until(100.0);
  EXPECT_EQ(a.times.size() + b.times.size(), 21u);
  for (std::size_t i = 1; i < a.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.times[i] - a.times[i - 1], 3.0);
  }
}

TEST(ParallelPdes, BarrierFallbackMatchesPairwise) {
  // The two sync protocols implement one contract: identical event
  // counts and timestamps on a cross-partition ping-pong.
  auto run = [](ParallelSimulator::SyncMode mode) {
    ParallelSimulator sim(2, 1.0);
    sim.set_sync_mode(mode);
    ForwardingLp a, b;
    const LpId ia = sim.add_lp(&a, 0);
    const LpId ib = sim.add_lp(&b, 1);
    a.peer = ib;
    b.peer = ia;
    a.delay = b.delay = 2.5;
    a.remaining = b.remaining = 8;
    sim.schedule(0.0, ia, 0);
    sim.run_until(100.0);
    auto times = a.times;
    times.insert(times.end(), b.times.begin(), b.times.end());
    return std::make_pair(sim.events_processed(), times);
  };
  const auto pairwise = run(ParallelSimulator::SyncMode::kPairwise);
  const auto barrier = run(ParallelSimulator::SyncMode::kBarrier);
  EXPECT_EQ(pairwise.first, barrier.first);
  EXPECT_EQ(pairwise.second, barrier.second);
}

TEST(ParallelPdes, WorkerStatsCountProcessedEvents) {
  ParallelSimulator sim(2, 1.0);
  CountingLp a, b;
  const LpId ia = sim.add_lp(&a, 0);
  const LpId ib = sim.add_lp(&b, 1);
  for (int i = 0; i < 6; ++i) sim.schedule(1.0 + i, ia, 0);
  for (int i = 0; i < 4; ++i) sim.schedule(1.0 + i, ib, 0);
  sim.run_until(100.0);
  EXPECT_EQ(sim.worker_stats(0).events, 6u);
  EXPECT_EQ(sim.worker_stats(1).events, 4u);
  EXPECT_GE(sim.worker_stats(0).rounds, 1u);
  EXPECT_THROW(sim.worker_stats(2), Error);
}

class PholdEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PholdEquivalence, ParallelMatchesSequential) {
  PholdConfig cfg;
  cfg.lps = 24;
  cfg.population = 3;
  cfg.lookahead = 1.0;
  cfg.mean_delay = 4.0;
  cfg.horizon = 500.0;
  cfg.seed = 42;
  const auto seq = run_phold_sequential(cfg);
  const auto par = run_phold_parallel(cfg, GetParam());
  EXPECT_GT(seq.events, 1000u);
  EXPECT_EQ(par.events, seq.events);
  EXPECT_EQ(par.per_lp, seq.per_lp);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PholdEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Phold, DeterministicAcrossRuns) {
  PholdConfig cfg;
  cfg.lps = 12;
  cfg.horizon = 200.0;
  const auto a = run_phold_parallel(cfg, 3);
  const auto b = run_phold_parallel(cfg, 3);
  EXPECT_EQ(a.per_lp, b.per_lp);
}

}  // namespace
}  // namespace dv::pdes
