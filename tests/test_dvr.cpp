// Packed columnar run format (.dvr) and vectorized-kernel tests.
//
// Two contracts are pinned here: (1) text-loaded and packed-loaded runs
// are bit-identical all the way into DataTables, and (2) every kernel in
// util/kernels.hpp matches its naive scalar twin bit for bit — including
// the zone-map-pruned windowed sums, whose skip of all-zero chunks must
// never change an accumulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/datatable.hpp"
#include "metrics/dvr.hpp"
#include "metrics/run_metrics.hpp"
#include "metrics/run_store.hpp"
#include "netsim/network.hpp"
#include "serve/catalog.hpp"
#include "util/common.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dv {
namespace {

metrics::RunMetrics dvr_sample_run(bool sampled, std::uint64_t seed = 17) {
  const auto topo = topo::Dragonfly::canonical(2);
  netsim::Params p;
  p.packet_size = 512;
  netsim::Network net(topo, routing::Algo::kAdaptive, p, seed);
  net.set_labels("uniform_random", "contiguous", {"job0"});
  Rng rng(seed + 1);
  for (int i = 0; i < 150; ++i) {
    const auto src =
        static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<std::uint32_t>(rng.next_below(topo.num_terminals()));
    }
    net.add_message({src, dst, 3000, rng.next_double() * 5000.0, 0});
  }
  if (sampled) net.enable_sampling(400.0);
  return net.run();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Bitwise equality — EXPECT_EQ(0.0, -0.0) would pass, this does not.
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

void expect_tables_bitwise_equal(const core::DataTable& a,
                                 const core::DataTable& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.column_names(), b.column_names());
  for (const auto& name : a.column_names()) {
    const auto& ca = a.column(name);
    const auto& cb = b.column(name);
    for (std::size_t r = 0; r < ca.size(); ++r) {
      ASSERT_TRUE(bits_equal(ca[r], cb[r]))
          << "column " << name << " row " << r;
    }
  }
}

// ------------------------------------------------------------- round trip

TEST(DvrFormat, RoundTripBitExactSampled) {
  const auto run = dvr_sample_run(true);
  const auto path = temp_path("dv_dvr_roundtrip.dvr");
  metrics::save_dvr(run, path);
  ASSERT_TRUE(metrics::is_dvr_file(path));
  const auto back = metrics::load_dvr(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.groups, run.groups);
  EXPECT_EQ(back.routers_per_group, run.routers_per_group);
  EXPECT_EQ(back.terminals_per_router, run.terminals_per_router);
  EXPECT_EQ(back.global_per_router, run.global_per_router);
  EXPECT_EQ(back.workload, run.workload);
  EXPECT_EQ(back.routing, run.routing);
  EXPECT_EQ(back.placement, run.placement);
  EXPECT_EQ(back.seed, run.seed);
  EXPECT_TRUE(bits_equal(back.end_time, run.end_time));
  EXPECT_EQ(back.job_names, run.job_names);

  ASSERT_EQ(back.local_links.size(), run.local_links.size());
  for (std::size_t i = 0; i < run.local_links.size(); ++i) {
    EXPECT_EQ(back.local_links[i].src_router, run.local_links[i].src_router);
    EXPECT_TRUE(bits_equal(back.local_links[i].traffic,
                           run.local_links[i].traffic));
    EXPECT_TRUE(bits_equal(back.local_links[i].sat_time,
                           run.local_links[i].sat_time));
    EXPECT_EQ(back.local_links[i].retries, run.local_links[i].retries);
  }
  ASSERT_EQ(back.terminals.size(), run.terminals.size());
  for (std::size_t i = 0; i < run.terminals.size(); ++i) {
    EXPECT_TRUE(bits_equal(back.terminals[i].sum_latency,
                           run.terminals[i].sum_latency));
    EXPECT_EQ(back.terminals[i].job, run.terminals[i].job);
    EXPECT_EQ(back.terminals[i].packets_finished,
              run.terminals[i].packets_finished);
  }

  ASSERT_TRUE(back.has_time_series());
  ASSERT_EQ(back.local_traffic_ts.frames(), run.local_traffic_ts.frames());
  for (std::size_t f = 0; f < run.local_traffic_ts.frames(); ++f) {
    for (std::size_t e = 0; e < run.local_traffic_ts.entities(); ++e) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(back.local_traffic_ts.at(f, e)),
                std::bit_cast<std::uint32_t>(run.local_traffic_ts.at(f, e)));
    }
  }
}

TEST(DvrFormat, TextAndPackedDataTablesBitIdentical) {
  const auto run = dvr_sample_run(true);
  const auto jpath = temp_path("dv_dvr_tbl.json");
  const auto dpath = temp_path("dv_dvr_tbl.dvr");
  run.save(jpath);
  metrics::save_dvr(run, dpath);
  // RunMetrics::load dispatches on the magic, not the extension.
  const core::DataSet text_ds(metrics::RunMetrics::load(jpath));
  const core::DataSet packed_ds(metrics::RunMetrics::load(dpath));
  std::remove(jpath.c_str());
  std::remove(dpath.c_str());
  for (const auto e : {core::Entity::kRouter, core::Entity::kLocalLink,
                       core::Entity::kGlobalLink, core::Entity::kTerminal}) {
    expect_tables_bitwise_equal(text_ds.table(e), packed_ds.table(e));
  }
  // Windowed tables reduce through PrefixSeries slabs built from the
  // loaded series; equality here pins the whole lazy-load + SIMD path.
  const double t1 = run.end_time / 2;
  expect_tables_bitwise_equal(
      text_ds.windowed_table(core::Entity::kLocalLink, 0.0, t1),
      packed_ds.windowed_table(core::Entity::kLocalLink, 0.0, t1));
}

TEST(DvrFormat, ContentUidStableAcrossFormatsAndSensitiveToContent) {
  const auto run = dvr_sample_run(true);
  const auto jpath = temp_path("dv_dvr_uid.json");
  const auto dpath = temp_path("dv_dvr_uid.dvr");
  run.save(jpath);
  metrics::save_dvr(run, dpath);
  const auto from_text = metrics::RunMetrics::load(jpath);
  const auto from_packed = metrics::RunMetrics::load(dpath);
  std::remove(jpath.c_str());
  std::remove(dpath.c_str());
  const auto uid = metrics::run_content_uid(run);
  EXPECT_EQ(metrics::run_content_uid(from_text), uid);
  EXPECT_EQ(metrics::run_content_uid(from_packed), uid);

  auto tweaked = run;
  tweaked.local_links[0].traffic += 1.0;
  EXPECT_NE(metrics::run_content_uid(tweaked), uid);
}

TEST(DvrFormat, HeaderOnlyOpenReadsNoChunks) {
  const auto run = dvr_sample_run(true);
  const auto path = temp_path("dv_dvr_header.dvr");
  metrics::save_dvr(run, path);
  metrics::dvr_reset_stats();
  {
    const metrics::DvrFile f(path);
    EXPECT_EQ(f.groups(), run.groups);
    EXPECT_EQ(f.workload(), run.workload);
    EXPECT_EQ(f.run_uid(), metrics::run_content_uid(run));
    EXPECT_TRUE(f.has_time_series());
    EXPECT_GT(f.chunks().size(), 0u);
    const auto st = metrics::dvr_stats();
    EXPECT_EQ(st.opens, 1u);
    EXPECT_EQ(st.chunks_read, 0u);  // metadata is free; payloads untouched
  }
  std::remove(path.c_str());
}

TEST(DvrFormat, ZoneMapPrunedWindowSumsBitIdentical) {
  const auto run = dvr_sample_run(true);
  const auto path = temp_path("dv_dvr_prune.dvr");
  metrics::save_dvr(run, path);
  const metrics::DvrFile f(path);
  metrics::dvr_reset_stats();
  std::size_t checked = 0;
  for (std::size_t id = 0; id < metrics::kDvrSeriesCount; ++id) {
    const auto frames = f.series_frames(id);
    const auto entities = f.series_entities(id);
    if (frames == 0 || entities == 0) continue;
    const auto series = f.series(id);
    for (const std::size_t e : {std::size_t{0}, entities / 2, entities - 1}) {
      for (const auto& [f0, f1] :
           {std::pair<std::size_t, std::size_t>{0, frames},
            {frames / 3, 2 * frames / 3},
            {0, 1}}) {
        const double pruned = f.series_range_sum(id, e, f0, f1, true);
        const double full = f.series_range_sum(id, e, f0, f1, false);
        const double scalar = series.range_sum(e, f0, f1);
        ASSERT_TRUE(bits_equal(pruned, full));
        ASSERT_TRUE(bits_equal(pruned, scalar));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
  // The sampled tail of a short run leaves all-zero chunks behind; the
  // pruning path must actually have fired for this test to mean anything.
  EXPECT_GT(metrics::dvr_stats().chunks_pruned, 0u);
  std::remove(path.c_str());
}

TEST(DvrFormat, RejectsTruncatedAndForeignFiles) {
  const auto path = temp_path("dv_dvr_bad.dvr");
  {
    std::ofstream os(path, std::ios::binary);
    os << "DVR1";  // magic only: header truncated
  }
  EXPECT_THROW(metrics::DvrFile{path}, Error);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "{\"not\": \"a dvr\"}";
  }
  EXPECT_FALSE(metrics::is_dvr_file(path));
  EXPECT_THROW(metrics::DvrFile{path}, Error);
  std::remove(path.c_str());
}

TEST(DvrFormat, RejectsMalformedChunkDirectory) {
  const auto run = dvr_sample_run(true);
  const auto path = temp_path("dv_dvr_malformed.dvr");
  metrics::save_dvr(run, path);
  std::string orig;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    orig = buf.str();
  }
  auto rd = [](const std::string& b, std::size_t at, auto v) {
    std::memcpy(&v, b.data() + at, sizeof(v));
    return v;
  };
  auto wr = [](std::string& b, std::size_t at, auto v) {
    std::memcpy(b.data() + at, &v, sizeof(v));
  };
  // Fixed header layout (docs/RUN_FORMAT.md): chunk count at byte 72,
  // directory offset at 76; 56-byte directory entries of
  // section/column/dtype/reserved u16s then offset/bytes/rows/row0 u64s.
  const auto n_chunks = rd(orig, 72, std::uint32_t{});
  const auto dir = rd(orig, 76, std::uint64_t{});
  std::size_t series_at = 0, f64_at = 0;
  for (std::uint32_t i = 0; i < n_chunks; ++i) {
    const std::size_t at = dir + i * 56;
    const auto section = rd(orig, at, std::uint16_t{});
    const auto dtype = rd(orig, at + 4, std::uint16_t{});
    const auto rows = rd(orig, at + 24, std::uint64_t{});
    if (rows == 0) continue;
    if (section >= 16 && series_at == 0) series_at = at;
    if (dtype == 1 && f64_at == 0) f64_at = at;  // a kF64 column
  }
  ASSERT_NE(series_at, 0u);
  ASSERT_NE(f64_at, 0u);

  auto expect_rejected = [&](const char* what, auto mutate) {
    std::string bytes = orig;
    mutate(bytes);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.close();
    EXPECT_THROW(metrics::DvrFile{path}, Error) << what;
  };

  // Series chunk whose rows are not a multiple of the entity count: the
  // payload no longer tiles the frames x entities slab, so series() would
  // memcpy past its allocation. bytes is kept consistent with the dtype
  // so only the series-shape validation can catch it.
  expect_rejected("series rows not a multiple of entities", [&](auto& b) {
    const auto rows = rd(b, series_at + 24, std::uint64_t{});
    wr(b, series_at + 24, rows - 1);
    wr(b, series_at + 16, (rows - 1) * sizeof(float));
  });
  // Series chunks claiming the header's entity class is empty while still
  // carrying payload rows.
  expect_rejected("series rows with zero entities", [&](auto& b) {
    const auto section = rd(b, series_at, std::uint16_t{});
    const std::size_t count_at =
        section < 18 ? 56 : section < 20 ? 60 : 64;  // n_local/global/term
    wr(b, count_at, std::uint32_t{0});
  });
  // offset + bytes wrapping past 2^64 — an additive bound check passes.
  expect_rejected("chunk offset overflow", [&](auto& b) {
    wr(b, f64_at + 8, std::numeric_limits<std::uint64_t>::max() - 4);
  });
  // rows * elem_size wrapping back to the real byte count — a
  // multiplicative size/dtype check passes.
  expect_rejected("chunk rows overflow", [&](auto& b) {
    const auto bytes = rd(b, f64_at + 16, std::uint64_t{});
    wr(b, f64_at + 24, (std::uint64_t{1} << 61) + bytes / 8);
  });
  // A frame index far past anything the file can back: frames * entities
  // would overflow the slab allocation arithmetic in series().
  expect_rejected("series frame index overflow", [&](auto& b) {
    wr(b, series_at + 32, std::uint64_t{1} << 62);
  });

  // The pristine bytes still open and materialize.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(orig.data(), static_cast<std::streamsize>(orig.size()));
  }
  EXPECT_EQ(metrics::run_content_uid(metrics::load_dvr(path)),
            metrics::run_content_uid(run));
  std::remove(path.c_str());
}

TEST(DvrFormat, SampledSeriesAdoptValidates) {
  auto s = metrics::SampledSeries::adopt(2, 10.0, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(s.entities(), 2u);
  EXPECT_EQ(s.frames(), 2u);
  EXPECT_FLOAT_EQ(s.at(1, 0), 3.0f);
  EXPECT_THROW(metrics::SampledSeries::adopt(2, 10.0, {1.0f}), Error);
}

// ------------------------------------------------- text loader satellites

TEST(DvrTextLoader, ToleratesBomCrlfAndTrailingWhitespace) {
  const auto run = dvr_sample_run(false);
  const auto path = temp_path("dv_dvr_crlf.json");
  run.save(path);
  std::string text;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    text = buf.str();
  }
  std::string mangled = "\xEF\xBB\xBF";  // UTF-8 BOM
  for (const char c : text) {
    if (c == '\n') mangled += "\r\n";
    else mangled += c;
  }
  mangled += "\r\n  \t ";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << mangled;
  }
  const auto back = metrics::RunMetrics::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(metrics::run_content_uid(back), metrics::run_content_uid(run));
}

TEST(DvrTextLoader, ParseErrorsCarryPathAndLine) {
  const auto path = temp_path("dv_dvr_bad_json.json");
  {
    std::ofstream os(path, std::ios::binary);
    os << "{\n  \"groups\": 2,\n  \"oops\n}\n";
  }
  try {
    metrics::RunMetrics::load(path);
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("line"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- store satellites

TEST(DvrStore, PackedAddRepackAndAtomicIndex) {
  const auto dir = temp_path("dv_dvr_store_test");
  std::filesystem::remove_all(dir);
  const auto run = dvr_sample_run(false);
  const auto uid = metrics::run_content_uid(run);
  {
    metrics::RunStore store(dir);
    const auto name = store.add(run, "packed_run",
                                metrics::StoreFormat::kPacked);
    EXPECT_EQ(name, "packed_run");
    EXPECT_TRUE(metrics::is_dvr_file(store.path(name)));
    EXPECT_EQ(store.info(name).format, metrics::StoreFormat::kPacked);
    EXPECT_EQ(store.info(name).uid, uid);
    // find() answers from the index alone.
    EXPECT_EQ(store.find("uniform_random").size(), 1u);
    // load() dispatches on the stored format transparently.
    EXPECT_EQ(metrics::run_content_uid(store.load(name)), uid);
  }
  {
    // Reopen: the index round-trips format + uid.
    metrics::RunStore store(dir);
    EXPECT_EQ(store.info("packed_run").format,
              metrics::StoreFormat::kPacked);
    EXPECT_EQ(store.info("packed_run").uid, uid);
    store.repack("packed_run", metrics::StoreFormat::kText);
    EXPECT_FALSE(metrics::is_dvr_file(store.path("packed_run")));
    EXPECT_EQ(metrics::run_content_uid(store.load("packed_run")), uid);
  }
  // The atomic index publish never leaves a temp file behind.
  EXPECT_FALSE(
      std::filesystem::exists(std::filesystem::path(dir) / "index.json.tmp"));
  EXPECT_TRUE(
      std::filesystem::exists(std::filesystem::path(dir) / "index.json"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------- lazy catalog

TEST(ServeLazyCatalog, AttachMaterializesOnFirstGet) {
  const auto run = dvr_sample_run(true);
  const auto path = temp_path("dv_dvr_lazy.dvr");
  metrics::save_dvr(run, path);

  serve::RunCatalog catalog(64, 2);
  const auto name = catalog.attach(path);
  EXPECT_EQ(name, "dv_dvr_lazy");
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.resident(), 0u);
  EXPECT_EQ(catalog.pending(), 1u);
  ASSERT_EQ(catalog.list_pending().size(), 1u);
  EXPECT_TRUE(catalog.list_pending()[0].packed);

  const auto lr = catalog.get(name);  // first touch materializes
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(lr->name, name);
  EXPECT_EQ(lr->data.run().workload, run.workload);
  EXPECT_EQ(catalog.resident(), 1u);
  EXPECT_EQ(catalog.pending(), 0u);
  EXPECT_EQ(catalog.get(name), lr);  // now a plain lookup

  catalog.unload(name);
  EXPECT_EQ(catalog.size(), 0u);
  // Unloading a pending attachment works without materializing it.
  catalog.attach(path, "again");
  EXPECT_EQ(catalog.pending(), 1u);
  catalog.unload("again");
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_THROW(catalog.get("again"), Error);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- kernels

TEST(KernelEquivalence, PrefixAddFrame) {
  Rng rng(7);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 7u, 64u, 1000u}) {
    std::vector<float> frame(n);
    std::vector<double> prev(n), got(n), want(n);
    for (std::size_t i = 0; i < n; ++i) {
      frame[i] = static_cast<float>(rng.next_double() * 1e6 - 3e5);
      prev[i] = rng.next_double() * 1e9;
    }
    kernels::prefix_add_frame(frame.data(), prev.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = prev[i] + static_cast<double>(frame[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bits_equal(got[i], want[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelEquivalence, StridedAndSpanSums) {
  Rng rng(8);
  const std::size_t stride = 17, frames = 101;
  std::vector<float> data(stride * frames);
  for (auto& v : data) v = static_cast<float>(rng.next_double() * 100.0);
  for (const std::size_t off : {0u, 5u, 16u}) {
    for (const auto& [f0, f1] :
         {std::pair<std::size_t, std::size_t>{0, frames}, {10, 90}, {50, 50}}) {
      double want = 0.0;
      for (std::size_t f = f0; f < f1; ++f) {
        want += static_cast<double>(data[f * stride + off]);
      }
      ASSERT_TRUE(bits_equal(
          kernels::strided_sum(data.data(), stride, off, f0, f1), want));
    }
  }
  double want = 0.0;
  for (const float v : data) want += static_cast<double>(v);
  EXPECT_TRUE(bits_equal(kernels::sum_span(data.data(), data.size()), want));
}

TEST(KernelEquivalence, FilterRangeMaskIncludingNan) {
  Rng rng(9);
  const std::size_t n = 257;
  std::vector<double> col(n);
  for (auto& v : col) v = rng.next_double() * 10.0 - 5.0;
  col[3] = std::numeric_limits<double>::quiet_NaN();
  col[100] = std::numeric_limits<double>::quiet_NaN();
  const double lo = -2.0, hi = 3.0;
  std::vector<unsigned char> got(n, 1), want(n, 1);
  kernels::filter_range_mask(col.data(), n, lo, hi, got.data());
  for (std::size_t i = 0; i < n; ++i) {
    // The scalar filter's exact predicate: reject below/above — a NaN
    // compares false both ways and is kept.
    if (col[i] < lo || col[i] > hi) want[i] = 0;
  }
  EXPECT_EQ(got, want);
}

TEST(KernelEquivalence, MinMax) {
  Rng rng(10);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 5u, 128u, 1001u}) {
    std::vector<float> f(n);
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) {
      f[i] = static_cast<float>(rng.next_double() * 2e3 - 1e3);
      d[i] = rng.next_double() * 2e3 - 1e3;
    }
    float flo = 1.0f, fhi = -1.0f;
    kernels::minmax_f32(f.data(), n, flo, fhi);
    double dlo = 1.0, dhi = -1.0;
    kernels::minmax_f64(d.data(), n, dlo, dhi);
    if (n == 0) {
      EXPECT_EQ(flo, 0.0f);
      EXPECT_EQ(dhi, 0.0);
      continue;
    }
    EXPECT_EQ(flo, *std::min_element(f.begin(), f.end()));
    EXPECT_EQ(fhi, *std::max_element(f.begin(), f.end()));
    EXPECT_EQ(dlo, *std::min_element(d.begin(), d.end()));
    EXPECT_EQ(dhi, *std::max_element(d.begin(), d.end()));
  }
}

TEST(KernelEquivalence, GatherSum) {
  Rng rng(11);
  std::vector<double> col(500);
  for (auto& v : col) v = rng.next_double() * 1e7;
  std::vector<std::uint32_t> rows;
  for (int i = 0; i < 237; ++i) {
    rows.push_back(static_cast<std::uint32_t>(rng.next_below(col.size())));
  }
  double want = 0.0;
  for (const auto r : rows) want += col[r];
  EXPECT_TRUE(bits_equal(
      kernels::gather_sum(col.data(), rows.data(), rows.size()), want));
}

TEST(KernelEquivalence, HistogramBinsMatchBinOfAndAddN) {
  Rng rng(12);
  const double lo = -1.0, hi = 4.0;
  const std::size_t bins = 13;
  Histogram one_by_one(lo, hi, bins);
  Histogram batched(lo, hi, bins);
  std::vector<double> xs(777);
  for (auto& x : xs) x = rng.next_double() * 8.0 - 2.0;
  xs[0] = lo;
  xs[1] = hi;
  xs[2] = std::nextafter(hi, lo);

  std::vector<std::uint32_t> got(xs.size());
  kernels::histogram_bins(xs.data(), xs.size(), lo, hi, bins, got.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(got[i], one_by_one.bin_of(xs[i])) << "x=" << xs[i];
  }

  for (const double x : xs) one_by_one.add(x);
  batched.add_n(xs.data(), xs.size());
  ASSERT_EQ(batched.bins(), one_by_one.bins());
  for (std::size_t b = 0; b < bins; ++b) {
    ASSERT_TRUE(bits_equal(batched.count(b), one_by_one.count(b)));
  }
  EXPECT_TRUE(bits_equal(batched.total(), one_by_one.total()));
}

}  // namespace
}  // namespace dv
