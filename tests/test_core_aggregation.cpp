// Aggregation tests: grouping, filters, maxBins re-binning (including the
// paper's 73-groups -> 9-partitions case), reducers, sum preservation.
#include <gtest/gtest.h>

#include <numeric>

#include "core/aggregation.hpp"
#include "util/rng.hpp"

namespace dv::core {
namespace {

/// Table with n rows: key = i / stride, val = i, weight = 1 + i % 3.
DataTable make_table(std::size_t n, std::size_t stride) {
  std::vector<double> key(n), val(n), w(n);
  for (std::size_t i = 0; i < n; ++i) {
    key[i] = static_cast<double>(i / stride);
    val[i] = static_cast<double>(i);
    w[i] = static_cast<double>(1 + i % 3);
  }
  DataTable t;
  t.add_column("key", std::move(key));
  t.add_column("val", std::move(val));
  t.add_column("packets_finished", std::move(w));
  return t;
}

TEST(Aggregation, GroupsByKeyInOrder) {
  const auto t = make_table(20, 5);
  const Aggregation agg(t, {{"key"}, 0, {}});
  ASSERT_EQ(agg.size(), 4u);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(agg.groups()[g].keys[0], static_cast<double>(g));
    EXPECT_EQ(agg.groups()[g].rows.size(), 5u);
  }
}

TEST(Aggregation, EmptyKeysMeansIndividualRows) {
  const auto t = make_table(7, 2);
  const Aggregation agg(t, {});
  EXPECT_EQ(agg.size(), 7u);
  EXPECT_FALSE(agg.binned());
}

TEST(Aggregation, SumPreservationUnderAnyGrouping) {
  const auto t = make_table(60, 7);
  const double total = std::accumulate(t.column("val").begin(),
                                       t.column("val").end(), 0.0);
  for (std::size_t bins : {0u, 2u, 3u, 100u}) {
    AggregationSpec spec;
    spec.keys = {"key"};
    spec.max_bins = bins;
    const Aggregation agg(t, spec);
    const auto sums = agg.reduce("val", Reducer::kSum);
    EXPECT_DOUBLE_EQ(std::accumulate(sums.begin(), sums.end(), 0.0), total)
        << "bins=" << bins;
  }
}

TEST(Aggregation, MaxBinsMatchesPaperExample) {
  // Fig. 5a: 73 groups with maxBins 8 aggregate to 9 partitions.
  std::vector<double> key(73);
  std::iota(key.begin(), key.end(), 0.0);
  DataTable t;
  t.add_column("group_id", std::move(key));
  AggregationSpec spec;
  spec.keys = {"group_id"};
  spec.max_bins = 8;
  const Aggregation agg(t, spec);
  EXPECT_TRUE(agg.binned());
  EXPECT_EQ(agg.size(), 9u);
}

TEST(Aggregation, MaxBinsNoOpWhenFewGroups) {
  const auto t = make_table(20, 5);  // 4 distinct keys
  AggregationSpec spec;
  spec.keys = {"key"};
  spec.max_bins = 8;
  const Aggregation agg(t, spec);
  EXPECT_FALSE(agg.binned());
  EXPECT_EQ(agg.size(), 4u);
}

TEST(Aggregation, MultiKeyGrouping) {
  DataTable t;
  t.add_column("a", {0, 0, 0, 1, 1, 1});
  t.add_column("b", {0, 1, 0, 1, 0, 1});
  t.add_column("v", {1, 2, 3, 4, 5, 6});
  AggregationSpec spec;
  spec.keys = {"a", "b"};
  const Aggregation agg(t, spec);
  ASSERT_EQ(agg.size(), 4u);  // (0,0) (0,1) (1,0) (1,1)
  const auto sums = agg.reduce("v", Reducer::kSum);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);  // rows 0, 2
  EXPECT_DOUBLE_EQ(sums[1], 2.0);
  EXPECT_DOUBLE_EQ(sums[2], 5.0);
  EXPECT_DOUBLE_EQ(sums[3], 10.0);
}

TEST(Aggregation, FiltersAreInclusiveRanges) {
  const auto t = make_table(20, 5);
  AggregationSpec spec;
  spec.keys = {"key"};
  spec.filters = {{"val", 5.0, 9.0}};
  const Aggregation agg(t, spec);
  ASSERT_EQ(agg.size(), 1u);  // only key 1 (rows 5..9)
  EXPECT_EQ(agg.filtered_rows().size(), 5u);
  EXPECT_EQ(agg.filtered_rows().front(), 5u);
  EXPECT_EQ(agg.filtered_rows().back(), 9u);
}

TEST(Aggregation, FilterOnMissingColumnThrows) {
  const auto t = make_table(10, 2);
  AggregationSpec spec;
  spec.filters = {{"nope", 0.0, 1.0}};
  EXPECT_THROW(Aggregation(t, spec), Error);
  AggregationSpec inverted;
  inverted.filters = {{"val", 5.0, 1.0}};
  EXPECT_THROW(Aggregation(t, inverted), Error);
}

TEST(Aggregation, DisjointFilterStillValidatesLaterFilters) {
  const auto t = make_table(10, 2);
  // A filter disjoint from the column extent empties the result…
  AggregationSpec disjoint;
  disjoint.filters = {{"val", 100.0, 200.0}};
  EXPECT_TRUE(Aggregation(t, disjoint).filtered_rows().empty());
  // …but must not short-circuit validation of the filters after it: an
  // inverted later range or a later filter on a missing column still
  // throws instead of silently yielding the empty result.
  AggregationSpec inverted;
  inverted.filters = {{"val", 100.0, 200.0}, {"val", 5.0, 1.0}};
  EXPECT_THROW(Aggregation(t, inverted), Error);
  AggregationSpec missing;
  missing.filters = {{"val", 100.0, 200.0}, {"nope", 0.0, 1.0}};
  EXPECT_THROW(Aggregation(t, missing), Error);
}

TEST(Aggregation, Reducers) {
  DataTable t;
  t.add_column("k", {0, 0, 0});
  t.add_column("v", {1.0, 2.0, 6.0});
  const Aggregation agg(t, {{"k"}, 0, {}});
  EXPECT_DOUBLE_EQ(agg.reduce("v", Reducer::kSum)[0], 9.0);
  EXPECT_DOUBLE_EQ(agg.reduce("v", Reducer::kMean)[0], 3.0);
  EXPECT_DOUBLE_EQ(agg.reduce("v", Reducer::kMax)[0], 6.0);
  EXPECT_DOUBLE_EQ(agg.reduce("v", Reducer::kMin)[0], 1.0);
  EXPECT_DOUBLE_EQ(agg.reduce("v", Reducer::kCount)[0], 3.0);
}

TEST(Aggregation, MeanIsWeightedByPacketsFinished) {
  // Aggregated avg_latency must equal the exact average over packets, not
  // the average of per-terminal averages.
  DataTable t;
  t.add_column("k", {0, 0});
  t.add_column("avg_latency", {10.0, 100.0});
  t.add_column("packets_finished", {9.0, 1.0});
  const Aggregation agg(t, {{"k"}, 0, {}});
  const double weighted = agg.reduce("avg_latency", Reducer::kMean)[0];
  EXPECT_DOUBLE_EQ(weighted, (9.0 * 10.0 + 1.0 * 100.0) / 10.0);
}

TEST(Aggregation, DefaultReducerRule) {
  EXPECT_EQ(default_reducer("traffic"), Reducer::kSum);
  EXPECT_EQ(default_reducer("sat_time"), Reducer::kSum);
  EXPECT_EQ(default_reducer("avg_latency"), Reducer::kMean);
  EXPECT_EQ(default_reducer("avg_hops"), Reducer::kMean);
}

TEST(Aggregation, Fig2bHistogramOverContinuousMetric) {
  // Fig. 2(b) of the paper: "we can further divide the global links into a
  // histogram of six bins, for example, based on accumulated traffic of
  // the link". Aggregating by a continuous metric makes every row its own
  // key; maxBins re-bins the sorted values into (at most ~) six rank-order
  // partitions.
  Rng rng(42);
  const std::size_t n = 300;
  std::vector<double> traffic(n);
  for (auto& v : traffic) v = rng.next_double() * 1e9;
  DataTable t;
  t.add_column("traffic", traffic);
  AggregationSpec spec;
  spec.keys = {"traffic"};
  spec.max_bins = 6;
  const Aggregation agg(t, spec);
  EXPECT_TRUE(agg.binned());
  EXPECT_LE(agg.size(), 7u);
  EXPECT_GE(agg.size(), 6u);
  // Bins are traffic-ordered: every value in bin i is below every value in
  // bin i+1 (rank-order histogram).
  for (std::size_t g = 1; g < agg.size(); ++g) {
    double prev_max = 0, cur_min = 2e9;
    for (std::uint32_t r : agg.groups()[g - 1].rows) {
      prev_max = std::max(prev_max, traffic[r]);
    }
    for (std::uint32_t r : agg.groups()[g].rows) {
      cur_min = std::min(cur_min, traffic[r]);
    }
    EXPECT_LT(prev_max, cur_min);
  }
}

TEST(Aggregation, BinnedGroupsPreserveRowMembership) {
  std::vector<double> key(30);
  std::iota(key.begin(), key.end(), 0.0);
  DataTable t;
  t.add_column("k", std::move(key));
  AggregationSpec spec;
  spec.keys = {"k"};
  spec.max_bins = 4;
  const Aggregation agg(t, spec);
  std::size_t covered = 0;
  for (const auto& g : agg.groups()) covered += g.rows.size();
  EXPECT_EQ(covered, 30u);
  EXPECT_LE(agg.size(), 5u);  // ~max_bins partitions
}

}  // namespace
}  // namespace dv::core
