// Projection-view tests: ring construction, angular layout, scales,
// ribbons (chord layout invariants), selection/highlight, SVG output.
#include <gtest/gtest.h>

#include <numeric>

#include "core/projection.hpp"
#include "helpers.hpp"

namespace dv::core {
namespace {

constexpr double kTau = 6.283185307179586;

ProjectionSpec fig4_style_spec() {
  return SpecBuilder()
      .level(Entity::kGlobalLink)
      .aggregate({"router_rank", "router_port"})
      .color("sat_time")
      .size("traffic")
      .colors({"white", "purple"})
      .level(Entity::kTerminal)
      .aggregate({"router_rank", "router_port"})
      .color("sat_time")
      .level(Entity::kTerminal)
      .color("workload")
      .size("avg_latency")
      .x("avg_hops")
      .y("data_size")
      .ribbons(Entity::kLocalLink, "router_rank")
      .build();
}

TEST(Projection, RingStructureMatchesSpec) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  ASSERT_EQ(view.rings().size(), 3u);
  const auto& r0 = view.rings()[0];
  // 4 ranks x 2 global ports per router on the p=2 dragonfly... rank count
  // a=4, h=2 -> 8 (rank, port) pairs... router_port here is the absolute
  // port index (2 terminal + 3 local + 2 global = indices 5,6).
  EXPECT_EQ(r0.items.size(), 4u * 2u);
  EXPECT_EQ(r0.type, PlotType::kBarChart);
  EXPECT_EQ(view.rings()[1].type, PlotType::kHeatmap1D);
  EXPECT_EQ(view.rings()[2].type, PlotType::kScatter);
  // Individual terminals on the outer ring.
  EXPECT_EQ(view.rings()[2].items.size(), mini.topo.num_terminals());
}

TEST(Projection, AngularSpansTileTheCircle) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  for (const auto& ring : view.rings()) {
    double covered = 0.0;
    for (std::size_t i = 0; i < ring.items.size(); ++i) {
      const auto& it = ring.items[i];
      EXPECT_LT(it.a0, it.a1);
      covered += it.a1 - it.a0;
      if (i > 0) {
        EXPECT_NEAR(ring.items[i - 1].a1, it.a0, 1e-9) << "gap in ring";
      }
    }
    EXPECT_NEAR(covered, kTau, 1e-6);
  }
}

TEST(Projection, NormalizedChannelsInUnitRange) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  for (const auto& ring : view.rings()) {
    for (const auto& it : ring.items) {
      EXPECT_GE(it.color_t, 0.0);
      EXPECT_LE(it.color_t, 1.0);
      EXPECT_GE(it.size_t_, 0.0);
      EXPECT_LE(it.size_t_, 1.0);
    }
  }
}

TEST(Projection, ItemsMaximizingAChannelGetT1) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  const auto& ring = view.rings()[0];
  double max_val = 0;
  for (const auto& it : ring.items) max_val = std::max(max_val, it.size_value);
  bool found = false;
  for (const auto& it : ring.items) {
    if (it.size_value == max_val && max_val > 0) {
      EXPECT_DOUBLE_EQ(it.size_t_, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Projection, SelectionReturnsSourceRows) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  // All ring-1 items together cover every terminal exactly once.
  std::vector<std::uint32_t> all;
  for (std::size_t i = 0; i < view.rings()[1].items.size(); ++i) {
    const auto& rows = view.select(1, i);
    all.insert(all.end(), rows.begin(), rows.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::uint32_t> expect(mini.topo.num_terminals());
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(all, expect);
  EXPECT_THROW(view.select(9, 0), Error);
}

TEST(Projection, HighlightMarksMatchingItems) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  ProjectionView view(data, fig4_style_spec());
  const auto hits = view.highlight(Entity::kTerminal, {0u, 1u, 2u});
  EXPECT_GT(hits, 0u);
  std::size_t marked = 0;
  for (const auto& ring : view.rings()) {
    for (const auto& it : ring.items) marked += it.highlighted;
  }
  EXPECT_EQ(marked, hits);
  view.clear_highlight();
  for (const auto& ring : view.rings()) {
    for (const auto& it : ring.items) EXPECT_FALSE(it.highlighted);
  }
}

TEST(Projection, RibbonChordInvariants) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  ASSERT_FALSE(view.arcs().empty());
  ASSERT_FALSE(view.ribbons().empty());
  // Arc spans are disjoint and ordered.
  for (std::size_t i = 1; i < view.arcs().size(); ++i) {
    EXPECT_GE(view.arcs()[i].a0, view.arcs()[i - 1].a1 - 1e-9);
  }
  for (const auto& rb : view.ribbons()) {
    // Each ribbon end sits inside its arc.
    const auto& arc_a = view.arcs()[rb.arc_a];
    const auto& arc_b = view.arcs()[rb.arc_b];
    EXPECT_GE(rb.a0, arc_a.a0 - 1e-9);
    EXPECT_LE(rb.a1, arc_a.a1 + 1e-9);
    EXPECT_GE(rb.b0, arc_b.a0 - 1e-9);
    EXPECT_LE(rb.b1, arc_b.a1 + 1e-9);
    EXPECT_GT(rb.size_value, 0.0);
    EXPECT_FALSE(rb.source_rows.empty());
  }
  // Bundles sum to the table's total traffic over used links.
  const auto& links = data.table(Entity::kLocalLink);
  const auto& traffic = links.column("traffic");
  const double total = std::accumulate(traffic.begin(), traffic.end(), 0.0);
  double bundled = 0;
  for (const auto& rb : view.ribbons()) bundled += rb.size_value;
  EXPECT_NEAR(bundled, total, total * 1e-9);
}

TEST(Projection, MaxBinsProducesPartitionedRing) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto spec = SpecBuilder()
                        .level(Entity::kGlobalLink)
                        .aggregate({"group_id"})
                        .max_bins(4)
                        .color("sat_time")
                        .no_ribbons()
                        .build();
  const ProjectionView view(data, spec);
  // 9 groups with maxBins 4 -> bucket size 2 -> 5 partitions.
  EXPECT_EQ(view.rings()[0].items.size(), 5u);
}

TEST(Projection, FilterRestrictsRing) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto spec = SpecBuilder()
                        .level(Entity::kRouter)
                        .aggregate({"group_id"})
                        .filter("group_id", 0, 2)
                        .color("local_traffic")
                        .no_ribbons()
                        .build();
  const ProjectionView view(data, spec);
  EXPECT_EQ(view.rings()[0].items.size(), 3u);
}

TEST(Projection, SharedScalesWidenDomains) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto spec = fig4_style_spec();
  ScaleSet shared = ProjectionView::compute_scales(data, spec);
  // Inflate one domain far beyond the local max.
  shared.get_or_add("L0/size").include(1e15);
  const ProjectionView view(data, spec, &shared);
  for (const auto& it : view.rings()[0].items) {
    EXPECT_LT(it.size_t_, 0.01) << "shared scale should compress local values";
  }
}

TEST(Projection, CategoricalJobColors) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  const auto& outer = view.rings()[2];
  // Terminals of job 0 and job 1 get the distinct categorical colors;
  // idle terminals get gray.
  const auto& jobs = data.table(Entity::kTerminal).column("workload");
  for (std::size_t i = 0; i < outer.items.size(); ++i) {
    const auto job = static_cast<std::int64_t>(jobs[outer.items[i].source_rows[0]]);
    EXPECT_EQ(outer.items[i].color, categorical_color(job));
  }
  EXPECT_EQ(categorical_color(-1), (Rgb{170, 170, 170}));
  EXPECT_NE(categorical_color(0), categorical_color(1));
}

TEST(Projection, DrillDownFocusesOnClickedPartition) {
  // The Fig. 5 workflow: an overview binned to partitions; clicking a
  // partition yields the detail view of exactly its groups.
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const auto overview = SpecBuilder()
                            .level(Entity::kGlobalLink)
                            .aggregate({"group_id"})
                            .max_bins(4)
                            .color("sat_time")
                            .size("traffic")
                            .level(Entity::kTerminal)
                            .aggregate({"group_id"})
                            .color("sat_time")
                            .ribbons(Entity::kLocalLink, "router_rank")
                            .build();
  const ProjectionView view(data, overview);
  ASSERT_EQ(view.rings()[0].items.size(), 5u);  // 9 groups, maxBins 4

  const auto focused_spec = view.drill_down(0, 0);
  const ProjectionView focused(data, focused_spec);
  // The first partition covers groups 0..1 (bucket size 2); the focused
  // view shows those groups individually on every level.
  EXPECT_EQ(focused.rings()[0].items.size(), 2u);
  EXPECT_EQ(focused.rings()[1].items.size(), 2u);
  // And its terminal rows really are only those groups' terminals.
  const auto& grp = data.table(Entity::kTerminal).column("group_id");
  for (const auto& it : focused.rings()[1].items) {
    for (std::uint32_t r : it.source_rows) EXPECT_LE(grp[r], 1.0);
  }
  // Drill-down on an individual-entity ring is rejected.
  const auto flat = SpecBuilder()
                        .level(Entity::kTerminal)
                        .color("sat_time")
                        .no_ribbons()
                        .build();
  const ProjectionView flat_view(data, flat);
  EXPECT_THROW(flat_view.drill_down(0, 0), Error);
}

TEST(Projection, LegendDescribesEveryLevel) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  EXPECT_GT(view.legend_height(), 0.0);
  const std::string svg = view.to_svg(400);
  // One legend line per ring plus the ribbon line, with channel names and
  // the shared color-scale domains.
  EXPECT_NE(svg.find("ring 0 (bar_chart)"), std::string::npos);
  EXPECT_NE(svg.find("ring 2 (scatter)"), std::string::npos);
  EXPECT_NE(svg.find("ribbons: local_link by router_rank"), std::string::npos);
  EXPECT_NE(svg.find("color=sat_time"), std::string::npos);
  EXPECT_NE(svg.find("x=avg_hops"), std::string::npos);
}

TEST(Projection, SvgRendersAllItems) {
  const auto mini = dv::testing::make_mini_run();
  const DataSet data(mini.run);
  const ProjectionView view(data, fig4_style_spec());
  const std::string svg = view.to_svg(400, "test view");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test view"), std::string::npos);
  // At least one path per ribbon and per non-scatter ring item.
  std::size_t paths = 0;
  for (std::size_t pos = svg.find("<path"); pos != std::string::npos;
       pos = svg.find("<path", pos + 1)) {
    ++paths;
  }
  EXPECT_GE(paths, view.ribbons().size() + view.rings()[1].items.size());
}

}  // namespace
}  // namespace dv::core
