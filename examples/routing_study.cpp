// Routing-strategy study (the Sec. V-B workflow): run the same AMG-style
// workload under minimal and adaptive routing, compare with shared visual
// scales, and print the quantitative shape the paper reports in Fig. 8 —
// adaptive spreads traffic over more links and lowers saturation.
//
//   $ ./routing_study [output.svg]
#include <cstdio>

#include "app/runner.hpp"
#include "core/comparison.hpp"
#include "util/str.hpp"

namespace {

dv::metrics::RunMetrics run_with(dv::routing::Algo algo) {
  dv::app::ExperimentConfig cfg;
  // The paper's Fig. 8 setting: AMG (1728 ranks) on the 2,550-terminal
  // canonical dragonfly, contiguous placement.
  cfg.dragonfly_p = 5;
  cfg.jobs = {{"amg", 1728, dv::placement::Policy::kContiguous, 150u << 20}};
  cfg.routing = algo;
  cfg.window = 5.0e5;
  cfg.seed = 7;
  return dv::app::run_experiment(cfg).run;
}

struct LinkStats {
  int used = 0;
  double traffic = 0, sat = 0, peak_sat = 0;
};

LinkStats stats(const std::vector<dv::metrics::LinkMetrics>& links) {
  LinkStats s;
  for (const auto& l : links) {
    s.used += l.traffic > 0;
    s.traffic += l.traffic;
    s.sat += l.sat_time;
    s.peak_sat = std::max(s.peak_sat, l.sat_time);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;

  std::printf("running AMG under minimal routing...\n");
  const auto run_min = run_with(routing::Algo::kMinimal);
  std::printf("running AMG under adaptive routing...\n");
  const auto run_adp = run_with(routing::Algo::kAdaptive);

  // Side-by-side projection views under one shared scale set.
  const core::DataSet d_min(run_min), d_adp(run_adp);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kLocalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  const core::ComparisonView cmp({&d_min, &d_adp}, spec,
                                 {"Minimal Routing", "Adaptive Routing"});
  const std::string out = argc > 1 ? argv[1] : "routing_study.svg";
  cmp.save_svg(out);

  const auto lmin = stats(run_min.local_links);
  const auto ladp = stats(run_adp.local_links);
  const auto gmin = stats(run_min.global_links);
  const auto gadp = stats(run_adp.global_links);

  std::printf("\n%-26s %14s %14s\n", "", "minimal", "adaptive");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-26s %14.3g %14.3g\n", label, a, b);
  };
  row("local links used", lmin.used, ladp.used);
  row("local traffic (B)", lmin.traffic, ladp.traffic);
  row("local sat (ns)", lmin.sat, ladp.sat);
  row("global links used", gmin.used, gadp.used);
  row("global traffic (B)", gmin.traffic, gadp.traffic);
  row("peak global sat (ns)", gmin.peak_sat, gadp.peak_sat);
  row("completion time (ns)", run_min.end_time, run_adp.end_time);

  std::printf("\nexpected shape (paper Fig. 8): adaptive raises link usage\n"
              "and traffic while lowering saturation hotspots.\n");
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
