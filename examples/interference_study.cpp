// Inter-job interference study (the Sec. V-D workflow): three applications
// run in parallel under random-group, random-router, and the paper's
// derived *hybrid* placement; per-job packet latency is compared across
// policies (Fig. 13d) and a job-level ribbon view is rendered per policy.
//
//   $ ./interference_study [output_prefix]
#include <cstdio>
#include <string>

#include "app/runner.hpp"
#include "core/comparison.hpp"

namespace {

using dv::placement::Policy;

dv::app::ExperimentResult run_with(Policy amg, Policy amr, Policy minife) {
  dv::app::ExperimentConfig cfg;
  // The paper's network: 73 groups x 12 routers x 6 terminals = 5,256,
  // with the Table I rank counts. Volumes are the scaled defaults (see
  // DESIGN.md), with AMG raised so its halo bursts stress the inter-group
  // links as in the paper. Takes ~20-30 s of wall time.
  cfg.dragonfly_p = 6;
  cfg.jobs = {{"amg", 1728, amg, 150u << 20},
              {"amr_boxlib", 1728, amr, 30u << 20},
              {"minife", 1152, minife, 735u << 20}};
  cfg.routing = dv::routing::Algo::kAdaptive;
  cfg.window = 5.0e5;
  cfg.seed = 23;
  return dv::app::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  const std::string prefix = argc > 1 ? argv[1] : "interference";

  std::printf("running random-group placement...\n");
  const auto group = run_with(Policy::kRandomGroup, Policy::kRandomGroup,
                              Policy::kRandomGroup);
  std::printf("running random-router placement...\n");
  const auto router = run_with(Policy::kRandomRouter, Policy::kRandomRouter,
                               Policy::kRandomRouter);
  std::printf("running hybrid placement (AMR Boxlib on random-group)...\n");
  const auto hybrid = run_with(Policy::kRandomRouter, Policy::kRandomGroup,
                               Policy::kRandomRouter);

  // Job-level ribbon views (Fig. 13a-c): global links bundled by job, with
  // proxy routers (no job) forming their own arc.
  const core::DataSet dg(group.run), dr(router.run), dh(hybrid.run);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kLocalLink)
                        .aggregate({"src_job"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"workload"})
                        .color("avg_latency")
                        .size("avg_hops")
                        .colors({"white", "crimson"})
                        .ribbons(core::Entity::kGlobalLink, "job")
                        .build();
  const core::ComparisonView cmp({&dg, &dr, &dh}, spec,
                                 {"Random Group", "Random Router", "Hybrid"});
  cmp.save_svg(prefix + "_views.svg");

  // Fig. 13d: per-job average packet latency under each placement.
  const auto summaries = cmp.job_summaries();
  std::printf("\navg packet latency (us, lower is better)\n");
  std::printf("%-14s %12s %12s %12s\n", "job", "rand-group", "rand-router",
              "hybrid");
  for (std::size_t j = 0; j < summaries[0].size(); ++j) {
    std::printf("%-14s %12.1f %12.1f %12.1f\n",
                summaries[0][j].name.c_str(),
                summaries[0][j].avg_latency / 1000.0,
                summaries[1][j].avg_latency / 1000.0,
                summaries[2][j].avg_latency / 1000.0);
  }
  std::printf("\nexpected shape (paper Fig. 13d): random-router helps AMG but\n"
              "hurts AMR Boxlib; the hybrid placement repairs AMR Boxlib's\n"
              "loss while keeping AMG's adaptive-routing gain.\n");
  std::printf("wrote %s_views.svg\n", prefix.c_str());
  return 0;
}
