// Quickstart: simulate a small Dragonfly, build a projection view with the
// fluent builder API, and render it to SVG — the minimal end-to-end tour
// of the library.
//
//   $ ./quickstart [output.svg]
#include <cstdio>

#include "app/runner.hpp"
#include "core/projection.hpp"
#include "core/views.hpp"
#include "util/str.hpp"

int main(int argc, char** argv) {
  using namespace dv;

  // 1. Describe an experiment: uniform-random traffic over every terminal
  //    of a 162-terminal canonical Dragonfly, adaptive routing.
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 3;
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 0}};
  cfg.routing = routing::Algo::kAdaptive;
  cfg.sample_dt = 10'000.0;  // 10 us time-series sampling

  // 2. Run it (placement -> workload generation -> packet simulation).
  const app::ExperimentResult result = app::run_experiment(cfg);
  std::printf("simulated %s: %llu events in %.3fs, %llu packets\n",
              result.topo.describe().c_str(),
              static_cast<unsigned long long>(result.events),
              result.wall_seconds,
              static_cast<unsigned long long>(
                  result.run.total_packets_finished()));
  std::printf("injected %s, end time %.0f ns\n",
              human_bytes(result.run.total_injected()).c_str(),
              result.run.end_time);

  // 3. Build the entity tables and a hierarchical radial view:
  //    ribbons  — local links bundled between router ranks,
  //    ring 0   — global links per rank (bar chart: saturation + traffic),
  //    ring 1   — terminals per rank (heatmap of saturation),
  //    ring 2   — individual terminals (scatter: hops vs. latency).
  const core::DataSet data(result.run);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .color("workload")
                        .size("data_size")
                        .x("avg_hops")
                        .y("avg_latency")
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  const core::ProjectionView view(data, spec);

  const std::string out = argc > 1 ? argv[1] : "quickstart.svg";
  view.save_svg(out, 800, "uniform random / adaptive routing");
  std::printf("wrote %s (%zu rings, %zu ribbons)\n", out.c_str(),
              view.rings().size(), view.ribbons().size());

  // 4. Details on demand: the busiest global-link aggregate.
  std::size_t busiest = 0;
  for (std::size_t i = 0; i < view.rings()[0].items.size(); ++i) {
    if (view.rings()[0].items[i].size_value >
        view.rings()[0].items[busiest].size_value) {
      busiest = i;
    }
  }
  std::printf("busiest rank carries %s over %zu global links\n",
              human_bytes(view.rings()[0].items[busiest].size_value).c_str(),
              view.select(0, busiest).size());
  return 0;
}
