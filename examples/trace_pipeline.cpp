// Trace pipeline (the Fig. 1 "Application Traces" path plus the Fig. 6
// temporal workflow): record a workload as a trace file, replay it through
// the simulator with sampling, find the largest traffic burst in the
// timeline, and re-aggregate the projection view on that time range.
//
//   $ ./trace_pipeline [output_prefix]
#include <cstdio>
#include <string>

#include "core/views.hpp"
#include "netsim/network.hpp"
#include "trace/trace.hpp"
#include "util/str.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  const std::string prefix = argc > 1 ? argv[1] : "trace_pipeline";

  // 1. Generate an AMG workload and record it as a trace (DUMPI stand-in).
  workload::Config wcfg;
  wcfg.ranks = 216;  // 6x6x6 halo grid
  wcfg.total_bytes = 24u << 20;
  wcfg.window = 1.5e6;
  wcfg.seed = 31;
  const auto trace =
      trace::record("amg", wcfg.ranks, workload::generate_amg(wcfg));
  const std::string trace_path = prefix + ".dvtr";
  trace::save_binary(trace, trace_path);
  std::printf("recorded %zu messages (%s) to %s\n", trace.messages.size(),
              human_bytes(static_cast<double>(trace.total_bytes())).c_str(),
              trace_path.c_str());

  // 2. Reload and replay through a placement onto the network.
  const auto reloaded = trace::load_binary(trace_path);
  const auto topo = topo::Dragonfly::canonical(3);
  const auto placement = placement::place_jobs(
      topo, {{reloaded.app, reloaded.ranks,
              placement::Policy::kContiguous}}, 31);
  netsim::Network net(topo, routing::Algo::kAdaptive, {}, 31);
  net.set_jobs(placement);
  net.set_labels(reloaded.app, "contiguous", {reloaded.app});
  net.add_messages(
      workload::map_to_terminals(reloaded.messages, placement, 0));
  net.enable_sampling(20'000.0);  // the paper's 0.02 ms AMG sampling rate
  const auto run = net.run();
  std::printf("replayed: %llu packets, end %.0f ns\n",
              static_cast<unsigned long long>(run.total_packets_finished()),
              run.end_time);

  // 3. Linked-view session: locate the biggest burst in the timeline and
  //    zoom the projection into it (Fig. 6c workflow).
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  core::AnalysisSession session{core::DataSet(run), spec};

  const auto series = session.timeline().series("local_traffic");
  std::size_t peak = 0;
  for (std::size_t f = 0; f < series.size(); ++f) {
    if (series[f] > series[peak]) peak = f;
  }
  const double dt = session.timeline().dt();
  const double t0 = std::max(0.0, (static_cast<double>(peak) - 3.0) * dt);
  const double t1 = (static_cast<double>(peak) + 4.0) * dt;
  std::printf("largest burst around frame %zu (t = %.0f ns): %s in one "
              "sample\n",
              peak, static_cast<double>(peak) * dt,
              human_bytes(series[peak]).c_str());

  session.save_svg(prefix + "_full.svg");
  session.select_time_range(t0, t1);
  session.save_svg(prefix + "_burst.svg");
  std::printf("wrote %s_full.svg and %s_burst.svg\n", prefix.c_str(),
              prefix.c_str());

  // 4. The burst slice should carry a meaningful share of the run traffic.
  double burst_total = 0;
  for (const auto& it : session.projection().rings()[0].items) {
    burst_total += it.size_value;
  }
  std::printf("global traffic inside the selected burst: %s\n",
              human_bytes(burst_total).c_str());
  return 0;
}
