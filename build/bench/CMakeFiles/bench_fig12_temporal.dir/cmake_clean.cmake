file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_temporal.dir/bench_fig12_temporal.cpp.o"
  "CMakeFiles/bench_fig12_temporal.dir/bench_fig12_temporal.cpp.o.d"
  "bench_fig12_temporal"
  "bench_fig12_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
