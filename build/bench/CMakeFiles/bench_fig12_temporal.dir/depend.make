# Empty dependencies file for bench_fig12_temporal.
# This may be replaced when dependencies are built.
