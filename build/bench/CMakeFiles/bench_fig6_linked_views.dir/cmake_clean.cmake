file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_linked_views.dir/bench_fig6_linked_views.cpp.o"
  "CMakeFiles/bench_fig6_linked_views.dir/bench_fig6_linked_views.cpp.o.d"
  "bench_fig6_linked_views"
  "bench_fig6_linked_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_linked_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
