# Empty compiler generated dependencies file for bench_fig6_linked_views.
# This may be replaced when dependencies are built.
