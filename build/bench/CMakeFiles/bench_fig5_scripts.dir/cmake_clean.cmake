file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scripts.dir/bench_fig5_scripts.cpp.o"
  "CMakeFiles/bench_fig5_scripts.dir/bench_fig5_scripts.cpp.o.d"
  "bench_fig5_scripts"
  "bench_fig5_scripts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
