# Empty dependencies file for bench_fig5_scripts.
# This may be replaced when dependencies are built.
