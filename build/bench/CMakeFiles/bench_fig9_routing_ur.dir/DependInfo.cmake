
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_routing_ur.cpp" "bench/CMakeFiles/bench_fig9_routing_ur.dir/bench_fig9_routing_ur.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_routing_ur.dir/bench_fig9_routing_ur.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dv_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/dv_app.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dv_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/dv_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/dv_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dv_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
