file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_routing_ur.dir/bench_fig9_routing_ur.cpp.o"
  "CMakeFiles/bench_fig9_routing_ur.dir/bench_fig9_routing_ur.cpp.o.d"
  "bench_fig9_routing_ur"
  "bench_fig9_routing_ur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_routing_ur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
