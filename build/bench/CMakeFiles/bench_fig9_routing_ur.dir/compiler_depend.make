# Empty compiler generated dependencies file for bench_fig9_routing_ur.
# This may be replaced when dependencies are built.
