file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_intragroup.dir/bench_fig10_intragroup.cpp.o"
  "CMakeFiles/bench_fig10_intragroup.dir/bench_fig10_intragroup.cpp.o.d"
  "bench_fig10_intragroup"
  "bench_fig10_intragroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_intragroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
