# Empty compiler generated dependencies file for bench_ext_fattree.
# This may be replaced when dependencies are built.
