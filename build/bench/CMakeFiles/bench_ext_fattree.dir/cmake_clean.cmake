file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fattree.dir/bench_ext_fattree.cpp.o"
  "CMakeFiles/bench_ext_fattree.dir/bench_ext_fattree.cpp.o.d"
  "bench_ext_fattree"
  "bench_ext_fattree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
