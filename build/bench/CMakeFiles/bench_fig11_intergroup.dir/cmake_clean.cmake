file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_intergroup.dir/bench_fig11_intergroup.cpp.o"
  "CMakeFiles/bench_fig11_intergroup.dir/bench_fig11_intergroup.cpp.o.d"
  "bench_fig11_intergroup"
  "bench_fig11_intergroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_intergroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
