# Empty dependencies file for bench_fig11_intergroup.
# This may be replaced when dependencies are built.
