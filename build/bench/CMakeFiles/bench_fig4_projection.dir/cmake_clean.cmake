file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_projection.dir/bench_fig4_projection.cpp.o"
  "CMakeFiles/bench_fig4_projection.dir/bench_fig4_projection.cpp.o.d"
  "bench_fig4_projection"
  "bench_fig4_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
