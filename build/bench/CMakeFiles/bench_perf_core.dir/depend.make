# Empty dependencies file for bench_perf_core.
# This may be replaced when dependencies are built.
