# Empty compiler generated dependencies file for bench_fig8_routing_amg.
# This may be replaced when dependencies are built.
