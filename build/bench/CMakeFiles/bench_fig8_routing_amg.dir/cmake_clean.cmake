file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_routing_amg.dir/bench_fig8_routing_amg.cpp.o"
  "CMakeFiles/bench_fig8_routing_amg.dir/bench_fig8_routing_amg.cpp.o.d"
  "bench_fig8_routing_amg"
  "bench_fig8_routing_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_routing_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
