file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_encoding.dir/bench_ablation_encoding.cpp.o"
  "CMakeFiles/bench_ablation_encoding.dir/bench_ablation_encoding.cpp.o.d"
  "bench_ablation_encoding"
  "bench_ablation_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
