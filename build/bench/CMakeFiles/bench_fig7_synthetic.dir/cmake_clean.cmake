file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_synthetic.dir/bench_fig7_synthetic.cpp.o"
  "CMakeFiles/bench_fig7_synthetic.dir/bench_fig7_synthetic.cpp.o.d"
  "bench_fig7_synthetic"
  "bench_fig7_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
