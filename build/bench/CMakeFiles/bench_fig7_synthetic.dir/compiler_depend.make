# Empty compiler generated dependencies file for bench_fig7_synthetic.
# This may be replaced when dependencies are built.
