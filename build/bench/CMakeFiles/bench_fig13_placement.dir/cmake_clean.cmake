file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_placement.dir/bench_fig13_placement.cpp.o"
  "CMakeFiles/bench_fig13_placement.dir/bench_fig13_placement.cpp.o.d"
  "bench_fig13_placement"
  "bench_fig13_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
