# Empty dependencies file for bench_fig13_placement.
# This may be replaced when dependencies are built.
