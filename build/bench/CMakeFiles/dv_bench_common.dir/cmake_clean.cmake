file(REMOVE_RECURSE
  "CMakeFiles/dv_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/dv_bench_common.dir/bench_common.cpp.o.d"
  "libdv_bench_common.a"
  "libdv_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
