file(REMOVE_RECURSE
  "libdv_bench_common.a"
)
