# Empty dependencies file for dv_bench_common.
# This may be replaced when dependencies are built.
