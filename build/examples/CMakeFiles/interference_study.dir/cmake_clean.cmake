file(REMOVE_RECURSE
  "CMakeFiles/interference_study.dir/interference_study.cpp.o"
  "CMakeFiles/interference_study.dir/interference_study.cpp.o.d"
  "interference_study"
  "interference_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
