# Empty compiler generated dependencies file for trace_pipeline.
# This may be replaced when dependencies are built.
