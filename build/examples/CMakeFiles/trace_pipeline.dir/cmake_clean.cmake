file(REMOVE_RECURSE
  "CMakeFiles/trace_pipeline.dir/trace_pipeline.cpp.o"
  "CMakeFiles/trace_pipeline.dir/trace_pipeline.cpp.o.d"
  "trace_pipeline"
  "trace_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
