# Empty dependencies file for dv_workload.
# This may be replaced when dependencies are built.
