file(REMOVE_RECURSE
  "libdv_workload.a"
)
