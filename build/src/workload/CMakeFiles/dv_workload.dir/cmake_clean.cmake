file(REMOVE_RECURSE
  "CMakeFiles/dv_workload.dir/workload.cpp.o"
  "CMakeFiles/dv_workload.dir/workload.cpp.o.d"
  "libdv_workload.a"
  "libdv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
