file(REMOVE_RECURSE
  "CMakeFiles/dv_placement.dir/placement.cpp.o"
  "CMakeFiles/dv_placement.dir/placement.cpp.o.d"
  "libdv_placement.a"
  "libdv_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
