# Empty dependencies file for dv_placement.
# This may be replaced when dependencies are built.
