file(REMOVE_RECURSE
  "libdv_placement.a"
)
