file(REMOVE_RECURSE
  "CMakeFiles/dv_netsim.dir/fattree_network.cpp.o"
  "CMakeFiles/dv_netsim.dir/fattree_network.cpp.o.d"
  "CMakeFiles/dv_netsim.dir/network.cpp.o"
  "CMakeFiles/dv_netsim.dir/network.cpp.o.d"
  "libdv_netsim.a"
  "libdv_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
