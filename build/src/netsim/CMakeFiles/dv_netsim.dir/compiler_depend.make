# Empty compiler generated dependencies file for dv_netsim.
# This may be replaced when dependencies are built.
