file(REMOVE_RECURSE
  "libdv_netsim.a"
)
