# Empty compiler generated dependencies file for dragonviz_cli.
# This may be replaced when dependencies are built.
