file(REMOVE_RECURSE
  "CMakeFiles/dragonviz_cli.dir/main.cpp.o"
  "CMakeFiles/dragonviz_cli.dir/main.cpp.o.d"
  "dragonviz"
  "dragonviz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragonviz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
