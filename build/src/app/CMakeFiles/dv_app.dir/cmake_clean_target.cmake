file(REMOVE_RECURSE
  "libdv_app.a"
)
