file(REMOVE_RECURSE
  "CMakeFiles/dv_app.dir/cli.cpp.o"
  "CMakeFiles/dv_app.dir/cli.cpp.o.d"
  "CMakeFiles/dv_app.dir/runner.cpp.o"
  "CMakeFiles/dv_app.dir/runner.cpp.o.d"
  "libdv_app.a"
  "libdv_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
