# Empty compiler generated dependencies file for dv_app.
# This may be replaced when dependencies are built.
