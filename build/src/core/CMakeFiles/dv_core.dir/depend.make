# Empty dependencies file for dv_core.
# This may be replaced when dependencies are built.
