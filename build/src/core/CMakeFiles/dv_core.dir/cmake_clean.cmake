file(REMOVE_RECURSE
  "CMakeFiles/dv_core.dir/aggregation.cpp.o"
  "CMakeFiles/dv_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/dv_core.dir/comparison.cpp.o"
  "CMakeFiles/dv_core.dir/comparison.cpp.o.d"
  "CMakeFiles/dv_core.dir/datatable.cpp.o"
  "CMakeFiles/dv_core.dir/datatable.cpp.o.d"
  "CMakeFiles/dv_core.dir/matrix_view.cpp.o"
  "CMakeFiles/dv_core.dir/matrix_view.cpp.o.d"
  "CMakeFiles/dv_core.dir/presets.cpp.o"
  "CMakeFiles/dv_core.dir/presets.cpp.o.d"
  "CMakeFiles/dv_core.dir/projection.cpp.o"
  "CMakeFiles/dv_core.dir/projection.cpp.o.d"
  "CMakeFiles/dv_core.dir/report.cpp.o"
  "CMakeFiles/dv_core.dir/report.cpp.o.d"
  "CMakeFiles/dv_core.dir/scales.cpp.o"
  "CMakeFiles/dv_core.dir/scales.cpp.o.d"
  "CMakeFiles/dv_core.dir/spec.cpp.o"
  "CMakeFiles/dv_core.dir/spec.cpp.o.d"
  "CMakeFiles/dv_core.dir/svg.cpp.o"
  "CMakeFiles/dv_core.dir/svg.cpp.o.d"
  "CMakeFiles/dv_core.dir/views.cpp.o"
  "CMakeFiles/dv_core.dir/views.cpp.o.d"
  "libdv_core.a"
  "libdv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
