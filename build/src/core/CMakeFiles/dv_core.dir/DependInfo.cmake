
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cpp" "src/core/CMakeFiles/dv_core.dir/aggregation.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/core/comparison.cpp" "src/core/CMakeFiles/dv_core.dir/comparison.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/comparison.cpp.o.d"
  "/root/repo/src/core/datatable.cpp" "src/core/CMakeFiles/dv_core.dir/datatable.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/datatable.cpp.o.d"
  "/root/repo/src/core/matrix_view.cpp" "src/core/CMakeFiles/dv_core.dir/matrix_view.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/matrix_view.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/core/CMakeFiles/dv_core.dir/presets.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/presets.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/core/CMakeFiles/dv_core.dir/projection.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/projection.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/dv_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/report.cpp.o.d"
  "/root/repo/src/core/scales.cpp" "src/core/CMakeFiles/dv_core.dir/scales.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/scales.cpp.o.d"
  "/root/repo/src/core/spec.cpp" "src/core/CMakeFiles/dv_core.dir/spec.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/spec.cpp.o.d"
  "/root/repo/src/core/svg.cpp" "src/core/CMakeFiles/dv_core.dir/svg.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/svg.cpp.o.d"
  "/root/repo/src/core/views.cpp" "src/core/CMakeFiles/dv_core.dir/views.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/dv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dv_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
