file(REMOVE_RECURSE
  "libdv_core.a"
)
