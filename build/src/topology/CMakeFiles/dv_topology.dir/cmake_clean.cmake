file(REMOVE_RECURSE
  "CMakeFiles/dv_topology.dir/dragonfly.cpp.o"
  "CMakeFiles/dv_topology.dir/dragonfly.cpp.o.d"
  "CMakeFiles/dv_topology.dir/fattree.cpp.o"
  "CMakeFiles/dv_topology.dir/fattree.cpp.o.d"
  "CMakeFiles/dv_topology.dir/slimfly.cpp.o"
  "CMakeFiles/dv_topology.dir/slimfly.cpp.o.d"
  "libdv_topology.a"
  "libdv_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
