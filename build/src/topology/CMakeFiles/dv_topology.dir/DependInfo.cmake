
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/dragonfly.cpp" "src/topology/CMakeFiles/dv_topology.dir/dragonfly.cpp.o" "gcc" "src/topology/CMakeFiles/dv_topology.dir/dragonfly.cpp.o.d"
  "/root/repo/src/topology/fattree.cpp" "src/topology/CMakeFiles/dv_topology.dir/fattree.cpp.o" "gcc" "src/topology/CMakeFiles/dv_topology.dir/fattree.cpp.o.d"
  "/root/repo/src/topology/slimfly.cpp" "src/topology/CMakeFiles/dv_topology.dir/slimfly.cpp.o" "gcc" "src/topology/CMakeFiles/dv_topology.dir/slimfly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
