# Empty dependencies file for dv_topology.
# This may be replaced when dependencies are built.
