file(REMOVE_RECURSE
  "libdv_topology.a"
)
