file(REMOVE_RECURSE
  "libdv_util.a"
)
