file(REMOVE_RECURSE
  "CMakeFiles/dv_util.dir/color.cpp.o"
  "CMakeFiles/dv_util.dir/color.cpp.o.d"
  "CMakeFiles/dv_util.dir/common.cpp.o"
  "CMakeFiles/dv_util.dir/common.cpp.o.d"
  "CMakeFiles/dv_util.dir/csv.cpp.o"
  "CMakeFiles/dv_util.dir/csv.cpp.o.d"
  "CMakeFiles/dv_util.dir/rng.cpp.o"
  "CMakeFiles/dv_util.dir/rng.cpp.o.d"
  "CMakeFiles/dv_util.dir/stats.cpp.o"
  "CMakeFiles/dv_util.dir/stats.cpp.o.d"
  "CMakeFiles/dv_util.dir/str.cpp.o"
  "CMakeFiles/dv_util.dir/str.cpp.o.d"
  "CMakeFiles/dv_util.dir/threadpool.cpp.o"
  "CMakeFiles/dv_util.dir/threadpool.cpp.o.d"
  "libdv_util.a"
  "libdv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
