# Empty dependencies file for dv_util.
# This may be replaced when dependencies are built.
