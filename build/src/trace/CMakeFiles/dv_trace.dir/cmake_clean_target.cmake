file(REMOVE_RECURSE
  "libdv_trace.a"
)
