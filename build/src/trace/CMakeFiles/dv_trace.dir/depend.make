# Empty dependencies file for dv_trace.
# This may be replaced when dependencies are built.
