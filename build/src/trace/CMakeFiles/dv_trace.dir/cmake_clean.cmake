file(REMOVE_RECURSE
  "CMakeFiles/dv_trace.dir/trace.cpp.o"
  "CMakeFiles/dv_trace.dir/trace.cpp.o.d"
  "libdv_trace.a"
  "libdv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
