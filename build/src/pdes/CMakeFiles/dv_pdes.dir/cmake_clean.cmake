file(REMOVE_RECURSE
  "CMakeFiles/dv_pdes.dir/engine.cpp.o"
  "CMakeFiles/dv_pdes.dir/engine.cpp.o.d"
  "CMakeFiles/dv_pdes.dir/parallel.cpp.o"
  "CMakeFiles/dv_pdes.dir/parallel.cpp.o.d"
  "CMakeFiles/dv_pdes.dir/phold.cpp.o"
  "CMakeFiles/dv_pdes.dir/phold.cpp.o.d"
  "libdv_pdes.a"
  "libdv_pdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
