# Empty dependencies file for dv_pdes.
# This may be replaced when dependencies are built.
