file(REMOVE_RECURSE
  "libdv_pdes.a"
)
