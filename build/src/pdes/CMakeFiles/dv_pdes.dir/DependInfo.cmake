
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdes/engine.cpp" "src/pdes/CMakeFiles/dv_pdes.dir/engine.cpp.o" "gcc" "src/pdes/CMakeFiles/dv_pdes.dir/engine.cpp.o.d"
  "/root/repo/src/pdes/parallel.cpp" "src/pdes/CMakeFiles/dv_pdes.dir/parallel.cpp.o" "gcc" "src/pdes/CMakeFiles/dv_pdes.dir/parallel.cpp.o.d"
  "/root/repo/src/pdes/phold.cpp" "src/pdes/CMakeFiles/dv_pdes.dir/phold.cpp.o" "gcc" "src/pdes/CMakeFiles/dv_pdes.dir/phold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
