file(REMOVE_RECURSE
  "libdv_metrics.a"
)
