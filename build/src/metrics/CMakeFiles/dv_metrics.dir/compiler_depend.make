# Empty compiler generated dependencies file for dv_metrics.
# This may be replaced when dependencies are built.
