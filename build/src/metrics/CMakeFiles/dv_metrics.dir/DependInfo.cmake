
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/run_metrics.cpp" "src/metrics/CMakeFiles/dv_metrics.dir/run_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/dv_metrics.dir/run_metrics.cpp.o.d"
  "/root/repo/src/metrics/run_store.cpp" "src/metrics/CMakeFiles/dv_metrics.dir/run_store.cpp.o" "gcc" "src/metrics/CMakeFiles/dv_metrics.dir/run_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/dv_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
