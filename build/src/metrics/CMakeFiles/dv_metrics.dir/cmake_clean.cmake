file(REMOVE_RECURSE
  "CMakeFiles/dv_metrics.dir/run_metrics.cpp.o"
  "CMakeFiles/dv_metrics.dir/run_metrics.cpp.o.d"
  "CMakeFiles/dv_metrics.dir/run_store.cpp.o"
  "CMakeFiles/dv_metrics.dir/run_store.cpp.o.d"
  "libdv_metrics.a"
  "libdv_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
