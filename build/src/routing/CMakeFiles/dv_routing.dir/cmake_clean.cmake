file(REMOVE_RECURSE
  "CMakeFiles/dv_routing.dir/routing.cpp.o"
  "CMakeFiles/dv_routing.dir/routing.cpp.o.d"
  "libdv_routing.a"
  "libdv_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
