file(REMOVE_RECURSE
  "libdv_routing.a"
)
