# Empty dependencies file for dv_routing.
# This may be replaced when dependencies are built.
