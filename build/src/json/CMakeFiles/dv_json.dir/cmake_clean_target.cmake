file(REMOVE_RECURSE
  "libdv_json.a"
)
