# Empty compiler generated dependencies file for dv_json.
# This may be replaced when dependencies are built.
