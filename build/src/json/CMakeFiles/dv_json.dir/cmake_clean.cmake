file(REMOVE_RECURSE
  "CMakeFiles/dv_json.dir/json.cpp.o"
  "CMakeFiles/dv_json.dir/json.cpp.o.d"
  "libdv_json.a"
  "libdv_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
