# Empty compiler generated dependencies file for dv_tests.
# This may be replaced when dependencies are built.
