
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app.cpp" "tests/CMakeFiles/dv_tests.dir/test_app.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_app.cpp.o.d"
  "/root/repo/tests/test_core_aggregation.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_aggregation.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_aggregation.cpp.o.d"
  "/root/repo/tests/test_core_comparison.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_comparison.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_comparison.cpp.o.d"
  "/root/repo/tests/test_core_data.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_data.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_data.cpp.o.d"
  "/root/repo/tests/test_core_matrix.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_matrix.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_matrix.cpp.o.d"
  "/root/repo/tests/test_core_projection.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_projection.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_projection.cpp.o.d"
  "/root/repo/tests/test_core_report.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_report.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_report.cpp.o.d"
  "/root/repo/tests/test_core_spec.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_spec.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_spec.cpp.o.d"
  "/root/repo/tests/test_core_svg_scales.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_svg_scales.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_svg_scales.cpp.o.d"
  "/root/repo/tests/test_core_views.cpp" "tests/CMakeFiles/dv_tests.dir/test_core_views.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_core_views.cpp.o.d"
  "/root/repo/tests/test_fattree_network.cpp" "tests/CMakeFiles/dv_tests.dir/test_fattree_network.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_fattree_network.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/dv_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/dv_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_netsim.cpp" "tests/CMakeFiles/dv_tests.dir/test_netsim.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_netsim.cpp.o.d"
  "/root/repo/tests/test_pdes.cpp" "tests/CMakeFiles/dv_tests.dir/test_pdes.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_pdes.cpp.o.d"
  "/root/repo/tests/test_pdes_parallel.cpp" "tests/CMakeFiles/dv_tests.dir/test_pdes_parallel.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_pdes_parallel.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "tests/CMakeFiles/dv_tests.dir/test_placement.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_placement.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dv_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/dv_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/dv_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dv_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/dv_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/dv_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/dv_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/dv_app.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dv_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/dv_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/dv_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dv_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dv_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dv_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
